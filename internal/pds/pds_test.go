package pds

import (
	"bytes"

	"sort"
	"testing"

	"potgo/internal/emit"
	"potgo/internal/isa"
	"potgo/internal/oid"
	"potgo/internal/pmem"
	"potgo/internal/randtest"
	"potgo/internal/trace"
	"potgo/internal/vm"
)

// testCtx is a single-pool (or round-robin multi-pool) Ctx with optional
// transactional snapshotting.
type testCtx struct {
	h       *pmem.Heap
	pools   []*pmem.Pool
	next    int
	tx      bool
	touched map[oid.OID]bool
}

func (c *testCtx) Heap() *pmem.Heap { return c.h }

func (c *testCtx) Alloc(key uint64, size uint32) (oid.OID, error) {
	p := c.pools[c.next%len(c.pools)]
	c.next++
	if c.tx && c.h.InTx() {
		return c.h.TxAlloc(p, size)
	}
	return c.h.Alloc(p, size)
}

func (c *testCtx) Free(o oid.OID) error {
	if c.tx && c.h.InTx() {
		return c.h.TxFree(o)
	}
	return c.h.Free(o)
}

func (c *testCtx) Touch(o oid.OID, size uint32) error {
	if !c.tx || !c.h.InTx() {
		return nil
	}
	if c.touched[o] {
		return nil
	}
	c.touched[o] = true
	return c.h.TxAddRange(o, size)
}

func (c *testCtx) begin(t *testing.T) {
	t.Helper()
	c.touched = map[oid.OID]bool{}
	if err := c.h.TxBegin(c.pools[0]); err != nil {
		t.Fatal(err)
	}
}

func (c *testCtx) end(t *testing.T) {
	t.Helper()
	if err := c.h.TxEnd(); err != nil {
		t.Fatal(err)
	}
}

func newCtx(t *testing.T, npools int, tx bool) (*testCtx, Cell) {
	t.Helper()
	as := vm.NewAddressSpace(31)
	em := emit.New(trace.Discard{}, emit.Opt)
	h, err := pmem.NewHeap(as, pmem.NewStore(), em, nil)
	if err != nil {
		t.Fatal(err)
	}
	c := &testCtx{h: h, tx: tx}
	for i := 0; i < npools; i++ {
		p, err := h.CreateSized(string(rune('A'+i)), 8<<20, 256*1024)
		if err != nil {
			t.Fatal(err)
		}
		c.pools = append(c.pools, p)
	}
	root, err := h.Root(c.pools[0], 64)
	if err != nil {
		t.Fatal(err)
	}
	return c, NewCell(h, root)
}

func TestListBasics(t *testing.T) {
	c, cell := newCtx(t, 1, false)
	l := NewList(cell)
	keys := []uint64{5, 3, 9, 1}
	for _, k := range keys {
		if err := l.Insert(c, k); err != nil {
			t.Fatal(err)
		}
	}
	if n, _ := l.Len(c); n != 4 {
		t.Errorf("len = %d", n)
	}
	// Head insertion: reverse order.
	got, _ := l.Keys(c)
	want := []uint64{1, 9, 3, 5}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("keys = %v", got)
		}
	}
	for _, k := range keys {
		o, err := l.Find(c, k)
		if err != nil || o.IsNull() {
			t.Errorf("find %d failed", k)
		}
	}
	if o, _ := l.Find(c, 42); !o.IsNull() {
		t.Error("absent key found")
	}
	// Remove middle, head, tail.
	for _, k := range []uint64{9, 1, 5} {
		ok, err := l.Remove(c, k)
		if err != nil || !ok {
			t.Fatalf("remove %d: %t, %v", k, ok, err)
		}
	}
	if ok, _ := l.Remove(c, 42); ok {
		t.Error("removed absent key")
	}
	if n, _ := l.Len(c); n != 1 {
		t.Errorf("len after removals = %d", n)
	}
}

func TestListAgainstReference(t *testing.T) {
	c, cell := newCtx(t, 1, false)
	l := NewList(cell)
	rng := randtest.New(t, 2)
	ref := map[uint64]bool{}
	for i := 0; i < 400; i++ {
		k := uint64(rng.Intn(120))
		if ref[k] {
			ok, err := l.Remove(c, k)
			if err != nil || !ok {
				t.Fatalf("remove %d: %v", k, err)
			}
			delete(ref, k)
		} else {
			if err := l.Insert(c, k); err != nil {
				t.Fatal(err)
			}
			ref[k] = true
		}
	}
	if n, _ := l.Len(c); n != len(ref) {
		t.Errorf("len = %d, want %d", n, len(ref))
	}
	for k := range ref {
		if o, _ := l.Find(c, k); o.IsNull() {
			t.Errorf("key %d missing", k)
		}
	}
}

func TestListSpansPools(t *testing.T) {
	c, cell := newCtx(t, 4, false)
	l := NewList(cell)
	for k := uint64(0); k < 40; k++ {
		if err := l.Insert(c, k); err != nil {
			t.Fatal(err)
		}
	}
	// Nodes really are spread across pools.
	poolsSeen := map[oid.PoolID]bool{}
	cur, _ := l.head.Get()
	for !cur.OID().IsNull() {
		poolsSeen[cur.OID().Pool()] = true
		ref, _ := c.h.Deref(cur.OID(), isa.RZ)
		cur, _ = ref.Load64(listNextOff)
	}
	if len(poolsSeen) != 4 {
		t.Errorf("list spans %d pools, want 4", len(poolsSeen))
	}
	for k := uint64(0); k < 40; k++ {
		if o, _ := l.Find(c, k); o.IsNull() {
			t.Errorf("cross-pool find %d failed", k)
		}
	}
}

func TestBSTAgainstReference(t *testing.T) {
	c, cell := newCtx(t, 1, false)
	bst := NewBST(cell)
	rng := randtest.New(t, 3)
	ref := map[uint64]bool{}
	for i := 0; i < 1500; i++ {
		k := uint64(rng.Intn(500))
		if ref[k] {
			ok, err := bst.Remove(c, k)
			if err != nil || !ok {
				t.Fatalf("remove %d: %t %v", k, ok, err)
			}
			delete(ref, k)
		} else {
			if err := bst.Insert(c, k); err != nil {
				t.Fatal(err)
			}
			ref[k] = true
		}
	}
	inorder, err := bst.InOrder(c)
	if err != nil {
		t.Fatal(err)
	}
	want := sortedKeys(ref)
	if !equalU64(inorder, want) {
		t.Errorf("inorder mismatch: %d vs %d keys", len(inorder), len(want))
	}
	for k := range ref {
		if o, _ := bst.Find(c, k); o.IsNull() {
			t.Errorf("key %d missing", k)
		}
	}
	if o, _ := bst.Find(c, 99999); !o.IsNull() {
		t.Error("phantom key")
	}
}

func TestRBTInvariantsUnderChurn(t *testing.T) {
	c, cell := newCtx(t, 1, false)
	rbt := NewRBT(cell)
	rng := randtest.New(t, 4)
	ref := map[uint64]bool{}
	for i := 0; i < 1200; i++ {
		k := uint64(rng.Intn(300))
		if ref[k] {
			ok, err := rbt.Remove(c, k)
			if err != nil || !ok {
				t.Fatalf("op %d: remove %d: %t %v", i, k, ok, err)
			}
			delete(ref, k)
		} else {
			if err := rbt.Insert(c, k); err != nil {
				t.Fatalf("op %d: insert %d: %v", i, k, err)
			}
			ref[k] = true
		}
		if i%50 == 0 {
			if _, err := rbt.CheckInvariants(c); err != nil {
				t.Fatalf("op %d: %v", i, err)
			}
		}
	}
	if _, err := rbt.CheckInvariants(c); err != nil {
		t.Fatal(err)
	}
	inorder, _ := rbt.InOrder(c)
	if !equalU64(inorder, sortedKeys(ref)) {
		t.Error("inorder mismatch")
	}
	for k := range ref {
		if o, _ := rbt.Find(c, k); o.IsNull() {
			t.Errorf("key %d missing", k)
		}
	}
}

func TestRBTDrainCompletely(t *testing.T) {
	c, cell := newCtx(t, 1, false)
	rbt := NewRBT(cell)
	var keys []uint64
	for k := uint64(0); k < 200; k++ {
		keys = append(keys, k*7%200)
	}
	for _, k := range keys {
		if err := rbt.Insert(c, k); err != nil {
			t.Fatal(err)
		}
	}
	rng := randtest.New(t, 5)
	rng.Shuffle(len(keys), func(i, j int) { keys[i], keys[j] = keys[j], keys[i] })
	for i, k := range keys {
		ok, err := rbt.Remove(c, k)
		if err != nil || !ok {
			t.Fatalf("drain %d: remove %d: %t %v", i, k, ok, err)
		}
		if i%20 == 0 {
			if _, err := rbt.CheckInvariants(c); err != nil {
				t.Fatalf("drain %d: %v", i, err)
			}
		}
	}
	if got, _ := rbt.InOrder(c); len(got) != 0 {
		t.Errorf("tree not empty: %d keys", len(got))
	}
}

func TestBTreeInvariantsAndFind(t *testing.T) {
	c, cell := newCtx(t, 1, false)
	bt := NewBTree(cell)
	rng := randtest.New(t, 6)
	ref := map[uint64]bool{}
	for i := 0; i < 2000; i++ {
		k := uint64(rng.Intn(10000))
		found, err := bt.Find(c, k)
		if err != nil {
			t.Fatal(err)
		}
		if found != ref[k] {
			t.Fatalf("find %d = %t, want %t", k, found, ref[k])
		}
		if !found {
			if err := bt.Insert(c, k); err != nil {
				t.Fatal(err)
			}
			ref[k] = true
		}
	}
	n, err := bt.CheckInvariants(c)
	if err != nil {
		t.Fatal(err)
	}
	if n != len(ref) {
		t.Errorf("tree has %d keys, want %d", n, len(ref))
	}
	if err := bt.Insert(c, firstKey(ref)); err == nil {
		t.Error("duplicate insert must fail")
	}
}

func TestBPlusAgainstReference(t *testing.T) {
	c, cell := newCtx(t, 1, false)
	bp := NewBPlus(cell)
	rng := randtest.New(t, 7)
	ref := map[uint64]uint64{}
	for i := 0; i < 3000; i++ {
		k := uint64(rng.Intn(800))
		if v, ok := ref[k]; ok {
			if rng.Intn(2) == 0 {
				got, found, err := bp.Find(c, k)
				if err != nil || !found || got != v {
					t.Fatalf("find %d = %d,%t,%v want %d", k, got, found, err, v)
				}
				ok2, err := bp.Remove(c, k)
				if err != nil || !ok2 {
					t.Fatalf("remove %d: %t %v", k, ok2, err)
				}
				delete(ref, k)
			} else {
				nv := rng.Uint64()
				ok2, err := bp.Update(c, k, nv)
				if err != nil || !ok2 {
					t.Fatalf("update %d: %v", k, err)
				}
				ref[k] = nv
			}
		} else {
			v := rng.Uint64()
			if err := bp.Insert(c, k, v); err != nil {
				t.Fatalf("insert %d: %v", k, err)
			}
			ref[k] = v
		}
		if i%100 == 0 {
			if n, err := bp.CheckInvariants(c); err != nil || n != len(ref) {
				t.Fatalf("op %d: invariants n=%d want %d err=%v", i, n, len(ref), err)
			}
		}
	}
	for k, v := range ref {
		got, found, err := bp.Find(c, k)
		if err != nil || !found || got != v {
			t.Fatalf("final find %d", k)
		}
	}
	if _, found, _ := bp.Find(c, 999999); found {
		t.Error("phantom key")
	}
	if ok, _ := bp.Remove(c, 999999); ok {
		t.Error("removed phantom")
	}
	if ok, _ := bp.Update(c, 999999, 1); ok {
		t.Error("updated phantom")
	}
}

func TestBPlusDrain(t *testing.T) {
	c, cell := newCtx(t, 1, false)
	bp := NewBPlus(cell)
	const n = 500
	for k := uint64(0); k < n; k++ {
		if err := bp.Insert(c, k, k*2); err != nil {
			t.Fatal(err)
		}
	}
	rng := randtest.New(t, 8)
	order := rng.Perm(n)
	for i, ki := range order {
		ok, err := bp.Remove(c, uint64(ki))
		if err != nil || !ok {
			t.Fatalf("drain %d: remove %d: %t %v", i, ki, ok, err)
		}
		if i%50 == 0 {
			if _, err := bp.CheckInvariants(c); err != nil {
				t.Fatalf("drain %d: %v", i, err)
			}
		}
	}
	if n, _ := bp.CheckInvariants(c); n != 0 {
		t.Errorf("tree not empty: %d", n)
	}
	// And it is reusable after being emptied.
	if err := bp.Insert(c, 1, 2); err != nil {
		t.Fatal(err)
	}
}

func TestBPlusScan(t *testing.T) {
	c, cell := newCtx(t, 1, false)
	bp := NewBPlus(cell)
	for k := uint64(0); k < 100; k += 2 {
		if err := bp.Insert(c, k, k+1000); err != nil {
			t.Fatal(err)
		}
	}
	got, err := bp.Scan(c, 31, 5)
	if err != nil {
		t.Fatal(err)
	}
	want := []uint64{32, 34, 36, 38, 40}
	if len(got) != 5 {
		t.Fatalf("scan returned %d", len(got))
	}
	for i, kv := range got {
		if kv.Key != want[i] || kv.Val != want[i]+1000 {
			t.Errorf("scan[%d] = %+v", i, kv)
		}
	}
	// Scan from beyond the end.
	if got, _ := bp.Scan(c, 1000, 5); len(got) != 0 {
		t.Errorf("tail scan returned %d", len(got))
	}
	// Scan everything.
	if got, _ := bp.Scan(c, 0, 1000); len(got) != 50 {
		t.Errorf("full scan returned %d", len(got))
	}
}

func TestStringArraySwap(t *testing.T) {
	c, cell := newCtx(t, 1, false)
	sa := NewStringArray(cell, 64, StringBytes)
	if err := sa.Init(c); err != nil {
		t.Fatal(err)
	}
	ref := make([][]byte, 64)
	for i := range ref {
		var err error
		if ref[i], err = sa.Get(c, i); err != nil {
			t.Fatal(err)
		}
	}
	rng := randtest.New(t, 9)
	for n := 0; n < 300; n++ {
		i, j := rng.Intn(64), rng.Intn(64)
		if err := sa.Swap(c, i, j); err != nil {
			t.Fatal(err)
		}
		ref[i], ref[j] = ref[j], ref[i]
	}
	for i := range ref {
		got, err := sa.Get(c, i)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, ref[i]) {
			t.Fatalf("string %d diverged", i)
		}
	}
	if _, err := sa.Get(c, 99); err == nil {
		t.Error("out-of-range get must fail")
	}
	if err := sa.Swap(c, 0, 99); err == nil {
		t.Error("out-of-range swap must fail")
	}
	if sa.N() != 64 {
		t.Error("N")
	}
}

// TestTransactionalAbortRestoresStructures is the crown-jewel failure-safety
// test: run a structure mutation inside a transaction, abort it, and verify
// the structure is bit-identical to its pre-transaction state — proving the
// structures Touch (undo-log) every word they modify.
func TestTransactionalAbortRestoresStructures(t *testing.T) {
	c, cell := newCtx(t, 1, true)
	rbt := NewRBT(cell)
	// Build a committed tree.
	for k := uint64(0); k < 100; k++ {
		c.begin(t)
		if err := rbt.Insert(c, k*17%100); err != nil {
			t.Fatal(err)
		}
		c.end(t)
	}
	before, _ := rbt.InOrder(c)

	// Abort an insert.
	c.begin(t)
	if err := rbt.Insert(c, 1000); err != nil {
		t.Fatal(err)
	}
	if err := c.h.TxAbort(); err != nil {
		t.Fatal(err)
	}
	after, _ := rbt.InOrder(c)
	if !equalU64(before, after) {
		t.Fatal("aborted insert left residue")
	}
	if _, err := rbt.CheckInvariants(c); err != nil {
		t.Fatal(err)
	}

	// Abort a remove (which rebalances aggressively).
	c.begin(t)
	ok, err := rbt.Remove(c, before[10])
	if err != nil || !ok {
		t.Fatal(err)
	}
	if err := c.h.TxAbort(); err != nil {
		t.Fatal(err)
	}
	after, _ = rbt.InOrder(c)
	if !equalU64(before, after) {
		t.Fatal("aborted remove left residue")
	}
	if _, err := rbt.CheckInvariants(c); err != nil {
		t.Fatal(err)
	}
}

func TestTransactionalAbortRestoresBPlus(t *testing.T) {
	c, cell := newCtx(t, 1, true)
	bp := NewBPlus(cell)
	for k := uint64(0); k < 200; k++ {
		c.begin(t)
		if err := bp.Insert(c, k, k); err != nil {
			t.Fatal(err)
		}
		c.end(t)
	}
	snapshot := func() []KV {
		kvs, err := bp.Scan(c, 0, 10000)
		if err != nil {
			t.Fatal(err)
		}
		return kvs
	}
	before := snapshot()

	// Abort a remove that triggers merges.
	c.begin(t)
	if ok, err := bp.Remove(c, 100); err != nil || !ok {
		t.Fatal(err)
	}
	if ok, err := bp.Remove(c, 101); err != nil || !ok {
		t.Fatal(err)
	}
	if err := c.h.TxAbort(); err != nil {
		t.Fatal(err)
	}
	after := snapshot()
	if len(before) != len(after) {
		t.Fatalf("aborted removes changed size: %d vs %d", len(before), len(after))
	}
	for i := range before {
		if before[i] != after[i] {
			t.Fatalf("kv %d diverged after abort", i)
		}
	}
	if _, err := bp.CheckInvariants(c); err != nil {
		t.Fatal(err)
	}
}

func sortedKeys(m map[uint64]bool) []uint64 {
	out := make([]uint64, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

func equalU64(a, b []uint64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func firstKey(m map[uint64]bool) uint64 {
	for k := range m {
		return k
	}
	return 0
}

func TestBTreeRemoveAgainstReference(t *testing.T) {
	c, cell := newCtx(t, 1, false)
	bt := NewBTree(cell)
	rng := randtest.New(t, 17)
	ref := map[uint64]bool{}
	for i := 0; i < 2500; i++ {
		k := uint64(rng.Intn(600))
		if ref[k] {
			ok, err := bt.Remove(c, k)
			if err != nil || !ok {
				t.Fatalf("op %d: remove %d: %t %v", i, k, ok, err)
			}
			delete(ref, k)
		} else {
			if err := bt.Insert(c, k); err != nil {
				t.Fatalf("op %d: insert %d: %v", i, k, err)
			}
			ref[k] = true
		}
		if i%100 == 0 {
			if n, err := bt.CheckInvariants(c); err != nil || n != len(ref) {
				t.Fatalf("op %d: n=%d want %d err=%v", i, n, len(ref), err)
			}
		}
	}
	for k := range ref {
		found, err := bt.Find(c, k)
		if err != nil || !found {
			t.Fatalf("final find %d failed", k)
		}
	}
	if ok, _ := bt.Remove(c, 99999); ok {
		t.Error("removed phantom key")
	}
}

func TestBTreeDrainCompletely(t *testing.T) {
	c, cell := newCtx(t, 1, false)
	bt := NewBTree(cell)
	const n = 400
	for k := uint64(0); k < n; k++ {
		if err := bt.Insert(c, k*13%n); err != nil {
			t.Fatal(err)
		}
	}
	rng := randtest.New(t, 18)
	order := rng.Perm(n)
	for i, ki := range order {
		k := uint64(ki) * 13 % n
		ok, err := bt.Remove(c, k)
		if err != nil || !ok {
			t.Fatalf("drain %d: remove %d: %t %v", i, k, ok, err)
		}
		if i%40 == 0 {
			if _, err := bt.CheckInvariants(c); err != nil {
				t.Fatalf("drain %d: %v", i, err)
			}
		}
	}
	if n, _ := bt.CheckInvariants(c); n != 0 {
		t.Errorf("tree not empty: %d keys", n)
	}
	// Reusable after drain.
	if err := bt.Insert(c, 7); err != nil {
		t.Fatal(err)
	}
	if found, _ := bt.Find(c, 7); !found {
		t.Error("insert after drain lost")
	}
}

func TestBTreeRemoveFromEmptyTree(t *testing.T) {
	c, cell := newCtx(t, 1, false)
	bt := NewBTree(cell)
	if ok, err := bt.Remove(c, 5); err != nil || ok {
		t.Errorf("remove from empty tree: %t, %v", ok, err)
	}
}

func TestBTreeTransactionalRemoveAborts(t *testing.T) {
	c, cell := newCtx(t, 1, true)
	bt := NewBTree(cell)
	for k := uint64(0); k < 120; k++ {
		c.begin(t)
		if err := bt.Insert(c, k); err != nil {
			t.Fatal(err)
		}
		c.end(t)
	}
	nBefore, err := bt.CheckInvariants(c)
	if err != nil {
		t.Fatal(err)
	}
	c.begin(t)
	for k := uint64(30); k < 40; k++ {
		if ok, err := bt.Remove(c, k); err != nil || !ok {
			t.Fatal(err)
		}
	}
	if err := c.h.TxAbort(); err != nil {
		t.Fatal(err)
	}
	nAfter, err := bt.CheckInvariants(c)
	if err != nil {
		t.Fatalf("invariants after abort: %v", err)
	}
	if nAfter != nBefore {
		t.Errorf("abort leaked: %d -> %d keys", nBefore, nAfter)
	}
}
