package obs

import (
	"expvar"
	"fmt"
	"io"
	"net"
	"net/http"
	"sync"
	"time"
)

// Reporter prints a periodic progress line for long-running campaigns:
// work done, instantaneous rate, and (when a total is known) an ETA. It is
// driven by polling a caller-supplied sample function, so the workload being
// observed needs no channel or callback plumbing — just counters. A nil
// *Reporter is a no-op.
type Reporter struct {
	w        io.Writer
	label    string
	unit     string
	sample   func() (done, total float64)
	extra    func() string
	interval time.Duration

	stop chan struct{}
	wg   sync.WaitGroup

	mu       sync.Mutex
	started  time.Time
	lastDone float64
	lastAt   time.Time
}

// NewReporter starts a goroutine that writes a progress line to w every
// interval. sample returns (work done so far, total expected work); a zero
// or unknown total suppresses the ETA and percentage. extra, when non-nil,
// appends a caller-defined suffix (e.g. "7.4 simulated MIPS"). Stop must be
// called to release the goroutine. A nil sample or non-positive interval
// returns a nil (disabled) Reporter.
func NewReporter(w io.Writer, label, unit string, interval time.Duration, sample func() (done, total float64), extra func() string) *Reporter {
	if sample == nil || interval <= 0 {
		return nil
	}
	now := time.Now()
	r := &Reporter{
		w: w, label: label, unit: unit, sample: sample, extra: extra,
		interval: interval, stop: make(chan struct{}),
		started: now, lastAt: now,
	}
	r.wg.Add(1)
	go r.loop()
	return r
}

func (r *Reporter) loop() {
	defer r.wg.Done()
	tick := time.NewTicker(r.interval)
	defer tick.Stop()
	for {
		select {
		case <-r.stop:
			return
		case <-tick.C:
			fmt.Fprintln(r.w, r.line())
		}
	}
}

// line renders one progress line from the current sample.
func (r *Reporter) line() string {
	done, total := r.sample()
	r.mu.Lock()
	now := time.Now()
	rate := 0.0
	if dt := now.Sub(r.lastAt).Seconds(); dt > 0 {
		rate = (done - r.lastDone) / dt
	}
	r.lastDone, r.lastAt = done, now
	r.mu.Unlock()

	s := fmt.Sprintf("%s: %.0f %s", r.label, done, r.unit)
	if total > 0 {
		s += fmt.Sprintf(" of %.0f (%.0f%%)", total, 100*done/total)
	}
	s += fmt.Sprintf(", %.1f %s/s", rate, r.unit)
	if total > done && rate > 0 {
		eta := time.Duration((total - done) / rate * float64(time.Second))
		s += fmt.Sprintf(", ETA %s", eta.Round(time.Second))
	}
	if r.extra != nil {
		if x := r.extra(); x != "" {
			s += ", " + x
		}
	}
	return s
}

// Stop halts the reporter and prints a final line. Safe on nil.
func (r *Reporter) Stop() {
	if r == nil {
		return
	}
	close(r.stop)
	r.wg.Wait()
	fmt.Fprintln(r.w, r.line())
}

// The expvar name is process-global and expvar.Publish panics on duplicates,
// so Serve publishes once and routes through a swappable registry pointer
// (tests and successive campaigns may serve different registries).
var (
	expvarMu  sync.Mutex
	expvarReg *Registry
	expvarUp  bool
)

// Serve exposes the registry on an expvar HTTP endpoint: GET /debug/vars on
// addr returns the standard expvar JSON with the full metrics snapshot under
// the "potsim" key, refreshed on every request — enough to watch a
// multi-hour campaign with curl or a dashboard. It returns the bound
// listener address (useful with ":0") and a shutdown function.
func (r *Registry) Serve(addr string) (string, func() error, error) {
	expvarMu.Lock()
	expvarReg = r
	if !expvarUp {
		expvar.Publish("potsim", expvar.Func(func() any {
			expvarMu.Lock()
			reg := expvarReg
			expvarMu.Unlock()
			return reg.Snapshot()
		}))
		expvarUp = true
	}
	expvarMu.Unlock()
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", nil, fmt.Errorf("obs: listen %s: %w", addr, err)
	}
	srv := &http.Server{Handler: http.DefaultServeMux}
	go srv.Serve(ln)
	return ln.Addr().String(), func() error { return srv.Close() }, nil
}
