package obs

import (
	"runtime"
	"sync"
	"testing"
)

// TestConcurrentMetrics hammers one registry's counters and histograms from
// NumCPU writer goroutines while a reader loop takes snapshots, asserting
// under -race that nothing tears: every snapshot is internally consistent,
// counter values and histogram bucket counts are monotone from one snapshot
// to the next, and the final snapshot accounts for every recorded event.
func TestConcurrentMetrics(t *testing.T) {
	reg := NewRegistry()
	writers := runtime.NumCPU()
	if writers < 2 {
		writers = 2
	}
	const perWriter = 20000
	bounds := []float64{1, 10, 100}

	var wg sync.WaitGroup
	stop := make(chan struct{})
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			// Handles are resolved concurrently too: half the writers
			// re-look names up every iteration to exercise the
			// registration path, half keep the handle.
			c := reg.Counter("race.count")
			h := reg.Histogram("race.hist", bounds...)
			g := reg.Gauge("race.gauge")
			for i := 0; i < perWriter; i++ {
				if w%2 == 0 {
					c = reg.Counter("race.count")
					h = reg.Histogram("race.hist", bounds...)
				}
				c.Inc()
				h.Observe(float64(i % 200))
				g.Set(float64(i))
			}
		}(w)
	}

	snapErrs := make(chan string, 4)
	var reader sync.WaitGroup
	reader.Add(1)
	go func() {
		defer reader.Done()
		var lastCount uint64
		lastBuckets := make([]uint64, len(bounds)+1)
		for {
			select {
			case <-stop:
				return
			default:
			}
			snap := reg.Snapshot()
			if c, ok := snap.Counters["race.count"]; ok {
				if c < lastCount {
					snapErrs <- "counter went backwards"
					return
				}
				lastCount = c
			}
			if h, ok := snap.Histograms["race.hist"]; ok {
				var sum uint64
				for i, b := range h.Counts {
					if b < lastBuckets[i] {
						snapErrs <- "histogram bucket went backwards"
						return
					}
					lastBuckets[i] = b
					sum += b
				}
				if h.Count != sum {
					snapErrs <- "histogram count does not equal its bucket sum (torn snapshot)"
					return
				}
			}
		}
	}()

	wg.Wait()
	close(stop)
	reader.Wait()
	select {
	case msg := <-snapErrs:
		t.Fatal(msg)
	default:
	}

	final := reg.Snapshot()
	want := uint64(writers * perWriter)
	if got := final.Counters["race.count"]; got != want {
		t.Errorf("race.count = %d, want %d", got, want)
	}
	h := final.Histograms["race.hist"]
	if h.Count != want {
		t.Errorf("race.hist count = %d, want %d", h.Count, want)
	}
	var bucketSum uint64
	for _, b := range h.Counts {
		bucketSum += b
	}
	if bucketSum != want {
		t.Errorf("race.hist buckets sum to %d, want %d", bucketSum, want)
	}
	// Mean observation is (0+...+199)/200 = 99.5 per writer pass.
	if mean := h.Sum / float64(h.Count); mean < 99 || mean > 100 {
		t.Errorf("race.hist mean = %v, want ~99.5", mean)
	}
}
