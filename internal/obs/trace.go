package obs

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"sync"
	"time"
)

// TraceWriter streams Chrome trace-event JSON (the array format that
// ui.perfetto.dev and chrome://tracing load directly). Events are written
// incrementally through a buffered writer, so arbitrarily long traces never
// materialize in memory. All methods are safe for concurrent use and no-ops
// on a nil *TraceWriter.
//
// Two timebases share one file, separated by process id:
//
//	pid 1 ("simulated core"): ts is the simulated cycle number, one
//	  microsecond per cycle — pipeline lanes of sampled instructions.
//	pid 2 ("harness"): ts is wall-clock microseconds since the writer was
//	  created — phase spans (config build, trace gen + sim, table render).
type TraceWriter struct {
	mu    sync.Mutex
	bw    *bufio.Writer
	c     io.Closer
	n     uint64 // events written
	err   error
	epoch time.Time
}

// Trace process ids (the "pid" lane groups in Perfetto).
const (
	SimPID     = 1 // simulated-cycle timebase
	HarnessPID = 2 // wall-clock timebase
)

// traceEvent is one Chrome trace event (the subset of fields we emit).
type traceEvent struct {
	Name string         `json:"name"`
	Ph   string         `json:"ph"`
	PID  int            `json:"pid"`
	TID  int            `json:"tid"`
	TS   float64        `json:"ts"`
	Dur  float64        `json:"dur,omitempty"`
	Args map[string]any `json:"args,omitempty"`
}

// NewTraceWriter starts a trace stream on w, which is closed (when it
// implements io.Closer) by Close.
func NewTraceWriter(w io.Writer) *TraceWriter {
	tw := &TraceWriter{bw: bufio.NewWriterSize(w, 1<<16), epoch: time.Now()}
	if c, ok := w.(io.Closer); ok {
		tw.c = c
	}
	tw.bw.WriteString("[")
	return tw
}

// CreateTrace opens path for writing and starts a trace stream on it.
func CreateTrace(path string) (*TraceWriter, error) {
	f, err := os.Create(path)
	if err != nil {
		return nil, fmt.Errorf("obs: %w", err)
	}
	return NewTraceWriter(f), nil
}

// emit appends one event (callers hold no lock).
func (t *TraceWriter) emit(ev traceEvent) {
	if t == nil {
		return
	}
	data, err := json.Marshal(ev)
	if err != nil {
		return // unmarshalable args: drop the event, not the trace
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.err != nil {
		return
	}
	if t.n > 0 {
		t.bw.WriteString(",\n")
	}
	if _, err := t.bw.Write(data); err != nil {
		t.err = err
		return
	}
	t.n++
}

// Complete records a complete ("ph":"X") span: [ts, ts+dur) on the given
// pid/tid lane. Units are microseconds in the pid's timebase.
func (t *TraceWriter) Complete(pid, tid int, name string, ts, dur float64, args map[string]any) {
	t.emit(traceEvent{Name: name, Ph: "X", PID: pid, TID: tid, TS: ts, Dur: dur, Args: args})
}

// Instant records an instant ("ph":"i") event.
func (t *TraceWriter) Instant(pid, tid int, name string, ts float64, args map[string]any) {
	t.emit(traceEvent{Name: name, Ph: "i", PID: pid, TID: tid, TS: ts, Args: args})
}

// NameProcess labels a pid lane group in the trace viewer.
func (t *TraceWriter) NameProcess(pid int, name string) {
	t.emit(traceEvent{Name: "process_name", Ph: "M", PID: pid, Args: map[string]any{"name": name}})
}

// NameThread labels a tid lane within a pid group.
func (t *TraceWriter) NameThread(pid, tid int, name string) {
	t.emit(traceEvent{Name: "thread_name", Ph: "M", PID: pid, TID: tid, Args: map[string]any{"name": name}})
}

// Span opens a wall-clock harness span on the given tid and returns a
// closure that ends it. Usage: defer tw.Span(0, "render table2")().
func (t *TraceWriter) Span(tid int, name string) func() {
	if t == nil {
		return func() {}
	}
	start := time.Since(t.epoch)
	return func() {
		end := time.Since(t.epoch)
		t.Complete(HarnessPID, tid, name,
			float64(start.Microseconds()), float64((end - start).Microseconds()), nil)
	}
}

// Events returns the number of events written so far (0 on nil).
func (t *TraceWriter) Events() uint64 {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.n
}

// Close terminates the JSON array, flushes, and closes the underlying file.
// It reports the first error encountered over the writer's lifetime.
func (t *TraceWriter) Close() error {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	t.bw.WriteString("]\n")
	if err := t.bw.Flush(); err != nil && t.err == nil {
		t.err = err
	}
	if t.c != nil {
		if err := t.c.Close(); err != nil && t.err == nil {
			t.err = err
		}
	}
	return t.err
}

// Pipeline lane tids under SimPID. The out-of-order model fills all four
// stage lanes; the five-stage in-order model uses LaneInOrder occupancy
// spans (issue → writeback).
const (
	LaneFetch    = 1 // fetch/dispatch: front end, redirect + window stalls
	LaneIssue    = 2 // dispatch/issue: operand wait
	LaneExec     = 3 // issue/complete: execution + memory latency
	LaneCommit   = 4 // complete/commit: in-order retirement wait
	LaneInOrder  = 5 // in-order pipe occupancy (issue..done)
	LaneWorkload = 6 // instant markers (sampled instruction metadata)
)

// PipelineTracer samples per-instruction pipeline timestamps out of a timing
// model into a TraceWriter. Every N-th instruction (1 = all) emits one
// complete event per stage lane, with the cycle number as the microsecond
// timestamp, so Perfetto renders the pipeline as stacked stage tracks. A nil
// *PipelineTracer is a no-op, which is how the hot loops stay untouched when
// tracing is off (a single nil check per instruction).
type PipelineTracer struct {
	tw    *TraceWriter
	every uint64
	seen  uint64
}

// NewPipelineTracer attaches sampling pipeline capture to tw, keeping one
// instruction in every `every` (values < 1 mean 1). Returns nil (disabled)
// when tw is nil, and writes the lane-name metadata otherwise.
func NewPipelineTracer(tw *TraceWriter, every int) *PipelineTracer {
	if tw == nil {
		return nil
	}
	if every < 1 {
		every = 1
	}
	tw.NameProcess(SimPID, "simulated core (1 cycle = 1us)")
	tw.NameThread(SimPID, LaneFetch, "fetch/dispatch")
	tw.NameThread(SimPID, LaneIssue, "dispatch/issue")
	tw.NameThread(SimPID, LaneExec, "issue/complete")
	tw.NameThread(SimPID, LaneCommit, "complete/commit")
	tw.NameThread(SimPID, LaneInOrder, "in-order pipe")
	return &PipelineTracer{tw: tw, every: uint64(every)}
}

// sample reports whether the current instruction is kept.
func (p *PipelineTracer) sample() bool {
	if p == nil {
		return false
	}
	p.seen++
	return p.seen%p.every == 1 || p.every == 1
}

// span clamps a stage interval to at least one cycle so zero-length stages
// remain visible in the viewer.
func span(from, to uint64) float64 {
	if to <= from {
		return 1
	}
	return float64(to - from)
}

// OoO records one sampled out-of-order instruction as four stage-lane spans:
// dispatch→issue→complete→commit, with the fetch lane covering the
// front-end slot before dispatch.
func (p *PipelineTracer) OoO(op string, fetch, dispatch, issue, complete, commit uint64) {
	if !p.sample() {
		return
	}
	args := map[string]any{"n": p.seen}
	p.tw.Complete(SimPID, LaneFetch, op, float64(fetch), span(fetch, dispatch), args)
	p.tw.Complete(SimPID, LaneIssue, op, float64(dispatch), span(dispatch, issue), nil)
	p.tw.Complete(SimPID, LaneExec, op, float64(issue), span(issue, complete), nil)
	p.tw.Complete(SimPID, LaneCommit, op, float64(complete), span(complete, commit), nil)
}

// InOrder records one sampled in-order instruction as a single occupancy
// span from its issue slot to its completion (result availability).
func (p *PipelineTracer) InOrder(op string, issue, done uint64) {
	if !p.sample() {
		return
	}
	p.tw.Complete(SimPID, LaneInOrder, op, float64(issue), span(issue, done),
		map[string]any{"n": p.seen})
}
