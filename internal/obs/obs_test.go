package obs

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"sync/atomic"
	"testing"
	"time"
)

func TestNilSafety(t *testing.T) {
	// Every handle a nil registry hands out must be callable.
	var reg *Registry
	c := reg.Counter("x")
	c.Add(3)
	c.Inc()
	if c.Value() != 0 {
		t.Error("nil counter must read 0")
	}
	g := reg.Gauge("y")
	g.Set(1.5)
	if g.Value() != 0 {
		t.Error("nil gauge must read 0")
	}
	h := reg.Histogram("z", 1, 2)
	h.Observe(1)
	snap := reg.Snapshot()
	if len(snap.Counters)+len(snap.Gauges)+len(snap.Histograms) != 0 {
		t.Error("nil registry snapshot must be empty")
	}

	var tw *TraceWriter
	tw.Complete(SimPID, 1, "x", 0, 1, nil)
	tw.Instant(SimPID, 1, "x", 0, nil)
	tw.Span(1, "x")()
	if tw.Events() != 0 || tw.Close() != nil {
		t.Error("nil trace writer must be inert")
	}
	if NewPipelineTracer(nil, 1) != nil {
		t.Error("tracer on nil writer must be nil")
	}
	var pt *PipelineTracer
	pt.OoO("ld", 0, 1, 2, 3, 4)
	pt.InOrder("ld", 0, 1)

	var rep *Reporter
	rep.Stop()
	if NewReporter(os.Stderr, "x", "y", time.Second, nil, nil) != nil {
		t.Error("reporter without a sample func must be nil")
	}
	if NewReporter(os.Stderr, "x", "y", 0, func() (float64, float64) { return 0, 0 }, nil) != nil {
		t.Error("reporter without an interval must be nil")
	}
}

func TestRegistryMetrics(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("a.b").Add(2)
	reg.Counter("a.b").Inc()
	if got := reg.Counter("a.b").Value(); got != 3 {
		t.Errorf("counter = %d, want 3", got)
	}
	reg.Gauge("g").Set(2.5)
	reg.Gauge("g").Set(-1)
	if got := reg.Gauge("g").Value(); got != -1 {
		t.Errorf("gauge = %v, want -1 (last value wins)", got)
	}

	h := reg.Histogram("h", 1, 10, 100)
	for _, v := range []float64{0.5, 1, 5, 50, 500, 5000} {
		h.Observe(v)
	}
	s := reg.Snapshot().Histograms["h"]
	// Buckets: <=1, <=10, <=100, overflow.
	if want := []uint64{2, 1, 1, 2}; fmt.Sprint(s.Counts) != fmt.Sprint(want) {
		t.Errorf("bucket counts = %v, want %v", s.Counts, want)
	}
	if s.Count != 6 {
		t.Errorf("count = %d, want 6", s.Count)
	}
	if s.Sum != 0.5+1+5+50+500+5000 {
		t.Errorf("sum = %v", s.Sum)
	}

	// Same name returns the same metric; unsorted bounds panic.
	if reg.Histogram("h") != h {
		t.Error("histogram lookup must be stable")
	}
	func() {
		defer func() {
			if recover() == nil {
				t.Error("unsorted bounds must panic")
			}
		}()
		reg.Histogram("bad", 3, 1)
	}()
}

func TestSnapshotRoundTrip(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("pot.walk_cycles").Add(42)
	reg.Gauge("cpu.inorder.ipc").Set(0.75)
	reg.Histogram("harness.run_instructions", 10, 100).Observe(57)

	path := filepath.Join(t.TempDir(), "metrics.json")
	if err := reg.WriteFile(path); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var snap Snapshot
	if err := json.Unmarshal(data, &snap); err != nil {
		t.Fatalf("snapshot does not round-trip: %v", err)
	}
	if snap.Counters["pot.walk_cycles"] != 42 {
		t.Errorf("counter lost in round trip: %v", snap.Counters)
	}
	if snap.Gauges["cpu.inorder.ipc"] != 0.75 {
		t.Errorf("gauge lost in round trip: %v", snap.Gauges)
	}
	h := snap.Histograms["harness.run_instructions"]
	if h.Count != 1 || h.Sum != 57 || len(h.Counts) != 3 {
		t.Errorf("histogram lost in round trip: %+v", h)
	}
}

func TestTraceWriter(t *testing.T) {
	var buf bytes.Buffer
	tw := NewTraceWriter(&buf)
	tw.NameProcess(SimPID, "core")
	tw.Complete(SimPID, LaneExec, "nvld", 100, 7, map[string]any{"n": 1})
	tw.Instant(HarnessPID, 1, "mark", 3, nil)
	end := tw.Span(2, "phase")
	end()
	if err := tw.Close(); err != nil {
		t.Fatal(err)
	}
	if tw.Events() != 4 {
		t.Errorf("events = %d, want 4", tw.Events())
	}

	var events []map[string]any
	if err := json.Unmarshal(buf.Bytes(), &events); err != nil {
		t.Fatalf("trace is not a JSON event array: %v\n%s", err, buf.String())
	}
	if len(events) != 4 {
		t.Fatalf("parsed %d events, want 4", len(events))
	}
	if events[0]["ph"] != "M" || events[1]["ph"] != "X" || events[2]["ph"] != "i" {
		t.Errorf("phases = %v %v %v", events[0]["ph"], events[1]["ph"], events[2]["ph"])
	}
	if events[1]["ts"].(float64) != 100 || events[1]["dur"].(float64) != 7 {
		t.Errorf("complete event ts/dur = %v/%v", events[1]["ts"], events[1]["dur"])
	}
	if events[3]["pid"].(float64) != HarnessPID {
		t.Errorf("span must land on the harness pid, got %v", events[3]["pid"])
	}
}

func TestPipelineTracerSampling(t *testing.T) {
	var buf bytes.Buffer
	tw := NewTraceWriter(&buf)
	pt := NewPipelineTracer(tw, 3)
	meta := tw.Events() // lane-name metadata written up front
	for i := 0; i < 9; i++ {
		pt.InOrder("alu", uint64(i), uint64(i+1))
	}
	if got := tw.Events() - meta; got != 3 {
		t.Errorf("sampled %d of 9 instructions at every=3, want 3", got)
	}
	before := tw.Events()
	pt.OoO("nvld", 0, 2, 4, 9, 10)
	pt.OoO("nvld", 0, 2, 4, 9, 10)
	pt.OoO("nvld", 0, 2, 4, 9, 10) // instruction 12: sampled (12 % 3 == 0 → seen%3==1 pattern)
	kept := tw.Events() - before
	if kept != 4 {
		t.Errorf("one sampled OoO instruction must emit 4 lane spans, got %d", kept)
	}
	if err := tw.Close(); err != nil {
		t.Fatal(err)
	}
	var events []map[string]any
	if err := json.Unmarshal(buf.Bytes(), &events); err != nil {
		t.Fatal(err)
	}
}

func TestReporter(t *testing.T) {
	var buf bytes.Buffer
	var done atomic.Int64
	r := NewReporter(&buf, "sweep", "case", 10*time.Millisecond,
		func() (float64, float64) { return float64(done.Load()), 100 },
		func() string { return "extra-bit" })
	done.Store(40)
	time.Sleep(35 * time.Millisecond)
	r.Stop()
	out := buf.String()
	if !strings.Contains(out, "sweep:") || !strings.Contains(out, "case") {
		t.Errorf("missing label/unit in %q", out)
	}
	if !strings.Contains(out, "of 100") || !strings.Contains(out, "%") {
		t.Errorf("missing total/percent in %q", out)
	}
	if !strings.Contains(out, "extra-bit") {
		t.Errorf("missing extra suffix in %q", out)
	}
}

func TestServeExpvar(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("crashtest.cases_explored").Add(7)
	addr, shutdown, err := reg.Serve("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer shutdown()
	resp, err := http.Get("http://" + addr + "/debug/vars")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var body struct {
		Potsim Snapshot `json:"potsim"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
		t.Fatal(err)
	}
	if body.Potsim.Counters["crashtest.cases_explored"] != 7 {
		t.Errorf("expvar snapshot = %+v", body.Potsim.Counters)
	}

	// A second registry swaps in without a duplicate-publish panic.
	reg2 := NewRegistry()
	reg2.Counter("crashtest.cases_explored").Add(9)
	addr2, shutdown2, err := reg2.Serve("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer shutdown2()
	resp2, err := http.Get("http://" + addr2 + "/debug/vars")
	if err != nil {
		t.Fatal(err)
	}
	defer resp2.Body.Close()
	if err := json.NewDecoder(resp2.Body).Decode(&body); err != nil {
		t.Fatal(err)
	}
	if body.Potsim.Counters["crashtest.cases_explored"] != 9 {
		t.Errorf("expvar must serve the most recent registry, got %+v", body.Potsim.Counters)
	}
}
