// Package obs is the simulator's observability layer: a typed metrics
// registry with hierarchical names, a Chrome trace-event (Perfetto) exporter
// for pipeline and harness timelines, and a periodic progress reporter for
// long campaigns.
//
// Everything in the package is built to cost nothing when disabled: a nil
// *Registry hands out nil metric handles, and every method on a nil handle
// (Counter, Gauge, Histogram, TraceWriter, PipelineTracer, Reporter) is a
// no-op. Components therefore thread obs handles unconditionally and never
// guard call sites; the simulator hot paths additionally keep their counts
// in local variables and publish once per run, so the disabled-path cost is
// a single nil comparison at most.
//
// Metric names are dot-hierarchical, component first:
//
//	cpu.inorder.cycles        polb.pipelined.miss     pmem.tx.undo_records
//	cpu.ooo.rob_stall_cycles  pot.walk_cycles         crashtest.cases_explored
//
// The full catalogue lives in DESIGN.md §"Observability".
package obs

import (
	"encoding/json"
	"fmt"
	"math"
	"os"
	"sort"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically non-decreasing uint64 metric. The zero value is
// usable; a nil *Counter is a no-op.
type Counter struct {
	v atomic.Uint64
}

// Add increments the counter by n.
func (c *Counter) Add(n uint64) {
	if c != nil {
		c.v.Add(n)
	}
}

// Inc increments the counter by one.
func (c *Counter) Inc() { c.Add(1) }

// Value returns the current count (0 on nil).
func (c *Counter) Value() uint64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is a last-value-wins float64 metric. A nil *Gauge is a no-op.
type Gauge struct {
	bits atomic.Uint64
}

// Set records the gauge's current value.
func (g *Gauge) Set(v float64) {
	if g != nil {
		g.bits.Store(math.Float64bits(v))
	}
}

// Value returns the last value set (0 on nil).
func (g *Gauge) Value() float64 {
	if g == nil {
		return 0
	}
	return math.Float64frombits(g.bits.Load())
}

// Histogram is a fixed-bucket histogram: observation v lands in the first
// bucket whose upper bound is >= v, or in the trailing overflow bucket.
// Bucket counts and the running sum are independently atomic; a snapshot
// derives the total count from the bucket counts it read, so it is always
// internally consistent even while writers race (each bucket is monotone, so
// successive snapshots are monotone bucket-by-bucket). A nil *Histogram is a
// no-op.
type Histogram struct {
	bounds  []float64 // ascending upper bounds
	buckets []atomic.Uint64
	sumBits atomic.Uint64 // float64 bits, CAS-accumulated
}

// Observe records one sample.
func (h *Histogram) Observe(v float64) {
	if h == nil {
		return
	}
	i := sort.SearchFloat64s(h.bounds, v)
	h.buckets[i].Add(1)
	for {
		old := h.sumBits.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if h.sumBits.CompareAndSwap(old, next) {
			return
		}
	}
}

// HistSnapshot is a point-in-time view of a histogram. Counts has one entry
// per bound plus a trailing overflow bucket; Count is the sum of Counts.
type HistSnapshot struct {
	Bounds []float64 `json:"bounds"`
	Counts []uint64  `json:"counts"`
	Count  uint64    `json:"count"`
	Sum    float64   `json:"sum"`
}

func (h *Histogram) snapshot() HistSnapshot {
	s := HistSnapshot{
		Bounds: h.bounds,
		Counts: make([]uint64, len(h.buckets)),
	}
	for i := range h.buckets {
		n := h.buckets[i].Load()
		s.Counts[i] = n
		s.Count += n
	}
	s.Sum = math.Float64frombits(h.sumBits.Load())
	return s
}

// Registry holds the process's metrics by hierarchical name. A nil *Registry
// is the disabled state: its lookup methods return nil handles.
type Registry struct {
	mu       sync.RWMutex
	counters map[string]*Counter
	gauges   map[string]*Gauge
	hists    map[string]*Histogram
}

// NewRegistry returns an empty, enabled registry.
func NewRegistry() *Registry {
	return &Registry{
		counters: make(map[string]*Counter),
		gauges:   make(map[string]*Gauge),
		hists:    make(map[string]*Histogram),
	}
}

// Counter returns the named counter, registering it on first use. Returns
// nil (a no-op handle) on a nil registry.
func (r *Registry) Counter(name string) *Counter {
	if r == nil {
		return nil
	}
	r.mu.RLock()
	c := r.counters[name]
	r.mu.RUnlock()
	if c != nil {
		return c
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if c = r.counters[name]; c == nil {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Gauge returns the named gauge, registering it on first use. Returns nil on
// a nil registry.
func (r *Registry) Gauge(name string) *Gauge {
	if r == nil {
		return nil
	}
	r.mu.RLock()
	g := r.gauges[name]
	r.mu.RUnlock()
	if g != nil {
		return g
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if g = r.gauges[name]; g == nil {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// Histogram returns the named histogram, registering it with the given
// ascending bucket upper bounds on first use (later calls may pass nil
// bounds to mean "whatever it was registered with"). Returns nil on a nil
// registry.
func (r *Registry) Histogram(name string, bounds ...float64) *Histogram {
	if r == nil {
		return nil
	}
	r.mu.RLock()
	h := r.hists[name]
	r.mu.RUnlock()
	if h != nil {
		return h
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if h = r.hists[name]; h == nil {
		if !sort.Float64sAreSorted(bounds) {
			panic(fmt.Sprintf("obs: histogram %q bounds not ascending: %v", name, bounds))
		}
		h = &Histogram{
			bounds:  append([]float64(nil), bounds...),
			buckets: make([]atomic.Uint64, len(bounds)+1),
		}
		r.hists[name] = h
	}
	return h
}

// Snapshot is a point-in-time view of every metric, JSON-serializable and
// round-trippable. Counter and histogram-bucket values are monotone across
// successive snapshots of the same registry.
type Snapshot struct {
	Counters   map[string]uint64       `json:"counters"`
	Gauges     map[string]float64      `json:"gauges"`
	Histograms map[string]HistSnapshot `json:"histograms"`
}

// Snapshot captures the current value of every registered metric. On a nil
// registry it returns an empty (but non-nil-mapped) snapshot.
func (r *Registry) Snapshot() Snapshot {
	s := Snapshot{
		Counters:   map[string]uint64{},
		Gauges:     map[string]float64{},
		Histograms: map[string]HistSnapshot{},
	}
	if r == nil {
		return s
	}
	r.mu.RLock()
	defer r.mu.RUnlock()
	for name, c := range r.counters {
		s.Counters[name] = c.Value()
	}
	for name, g := range r.gauges {
		s.Gauges[name] = g.Value()
	}
	for name, h := range r.hists {
		s.Histograms[name] = h.snapshot()
	}
	return s
}

// WriteFile dumps a snapshot of the registry as indented JSON to path. A nil
// registry writes an empty snapshot (the file is still valid JSON).
func (r *Registry) WriteFile(path string) error {
	data, err := json.MarshalIndent(r.Snapshot(), "", "  ")
	if err != nil {
		return fmt.Errorf("obs: %w", err)
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}
