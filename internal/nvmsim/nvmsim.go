// Package nvmsim models the volatile write-back cache that sits between a
// program's stores and the durable NVM cells (paper §2.1.3: persist =
// CLWB + SFENCE). Without it, every store would be durable the moment it
// executes and a missing flush or fence could never be observed.
//
// The model is line-granular (64-byte cache lines) and sits between two
// byte images that the host (internal/pmem) owns:
//
//   - the cache view: the pool bytes mapped into the simulated address
//     space, which every load and store operates on directly (caches are
//     coherent, so loads always see the newest store);
//   - the durable view: the backing bytes that survive a crash.
//
// A store marks its lines dirty (newer in cache than in NVM). A CLWB
// snapshots the line's current content and moves it in-flight: the
// write-back has *started*, but nothing is ordered yet. An SFENCE drains
// every in-flight snapshot to the durable view — that, and only that, is
// the durability point. At a crash, the dirty and in-flight lines are the
// volatile set; an adversarial Policy decides, line by line (and under
// torn-write policies word by word, matching the 8-byte store atomicity of
// the simulated machine), which of them reach durability anyway — modelling
// cache evictions and write-backs that happened to complete before power
// was lost.
//
// The Domain also numbers every store, CLWB and SFENCE as an event and can
// be armed to panic with a CrashSignal just before applying a chosen
// event, giving crash-injection engines (internal/crashtest) an
// instruction-granular crash point inside any library or structure
// operation.
package nvmsim

import (
	"fmt"
	"math/bits"
	"sort"
	"sync/atomic"
)

// LineBytes is the cache-line size of the simulated machine.
const LineBytes = 64

// wordsPerLine is the number of 8-byte atomic units per line; survival
// masks carry one bit per word.
const wordsPerLine = LineBytes / 8

// Line names one cache line of one pool: the pool id and the line-aligned
// pool offset.
type Line struct {
	Pool uint32
	Off  uint32
}

func (l Line) String() string { return fmt.Sprintf("%d:%#x", l.Pool, l.Off) }

// Memory is the Domain's window onto the two byte images. The host
// (internal/pmem's Heap) implements it.
type Memory interface {
	// ReadCacheLine copies the line's current cache-view content into
	// dst. It reports false when the pool is no longer mapped.
	ReadCacheLine(pool, off uint32, dst *[LineBytes]byte) bool
	// WriteDurableWords writes the 8-byte words of src selected by mask
	// (bit i = word i) into the durable view of the line.
	WriteDurableWords(pool, off uint32, src *[LineBytes]byte, mask byte)
	// ReadDurableLine copies the line's durable-view content into dst. It
	// reports false when the pool is no longer mapped. The media-fault
	// injector uses it to flip bits in what actually survives a crash.
	ReadDurableLine(pool, off uint32, dst *[LineBytes]byte) bool
	// WriteCacheLine overwrites the line's cache-view content from src.
	// It reports false when the pool is no longer mapped. The media-fault
	// injector uses it to make a flip in a *clean* line visible to the
	// running program too: a clean line's next load refills from media.
	WriteCacheLine(pool, off uint32, src *[LineBytes]byte) bool
}

// CrashSignal is the panic payload thrown when an armed Domain reaches its
// crash point. Crash-injection engines recover it, apply a Policy via
// Heap.Crash, and proceed to reopen-and-verify.
type CrashSignal struct {
	// Event is the event index the crash preempted (the event did not
	// happen).
	Event uint64
	// Poisoned marks a secondary signal: the domain's armed crash already
	// fired (on this or another goroutine) and this event arrived at a
	// dead machine. Concurrent crash harnesses see one primary signal and
	// any number of poisoned ones.
	Poisoned bool
}

func (c *CrashSignal) String() string { return fmt.Sprintf("nvmsim: crash at event %d", c.Event) }

// AsCrashSignal extracts a CrashSignal from a recovered panic value.
func AsCrashSignal(r any) (*CrashSignal, bool) {
	c, ok := r.(*CrashSignal)
	return c, ok
}

// poolState tracks one pool's volatile lines: a dirty bitmap (one bit per
// line; compact enough for multi-megabyte pools) plus the in-flight
// snapshots captured by CLWB and not yet drained by SFENCE.
type poolState struct {
	lines    uint32
	dirty    []uint64
	inflight map[uint32]*[LineBytes]byte
}

func (ps *poolState) setDirty(line uint32) { ps.dirty[line/64] |= 1 << (line % 64) }
func (ps *poolState) clrDirty(line uint32) { ps.dirty[line/64] &^= 1 << (line % 64) }
func (ps *poolState) isDirty(line uint32) bool {
	return ps.dirty[line/64]&(1<<(line%64)) != 0
}

// Domain is one persistence domain: the volatile cache state of every
// mapped pool plus the event counter used for crash-point injection.
type Domain struct {
	pools         map[uint32]*poolState
	events        uint64
	armed         bool
	armAt         uint64
	poisonOnCrash bool
	// poisoned is read/written atomically: concurrent harness code checks
	// Poisoned() from worker goroutines that don't hold the host's event
	// lock (e.g. to classify an error as a casualty of the crash).
	poisoned uint32
	// hot indexes the pools with at least one in-flight snapshot, so an
	// SFENCE drains only them instead of walking every mapped pool (the
	// EACH pattern maps hundreds of pools, almost all quiescent at any
	// given fence).
	hot map[uint32]*poolState
	// bufFree recycles drained snapshot buffers: the steady-state commit
	// loop (CLWB lines, fence, repeat) then allocates nothing.
	bufFree []*[LineBytes]byte
	// flips holds armed media faults (see ArmFlip), sorted by event index.
	flips []armedFlip
}

// maxFreeBufs bounds the snapshot-buffer free list (64 KiB of lines).
const maxFreeBufs = 1024

// NewDomain returns an empty persistence domain.
func NewDomain() *Domain {
	return &Domain{
		pools: make(map[uint32]*poolState),
		hot:   make(map[uint32]*poolState),
	}
}

// getBuf takes a snapshot buffer from the free list, or allocates one.
func (d *Domain) getBuf() *[LineBytes]byte {
	if n := len(d.bufFree); n > 0 {
		b := d.bufFree[n-1]
		d.bufFree = d.bufFree[:n-1]
		return b
	}
	return new([LineBytes]byte)
}

// putBuf returns a drained snapshot buffer to the free list.
func (d *Domain) putBuf(b *[LineBytes]byte) {
	if len(d.bufFree) < maxFreeBufs {
		d.bufFree = append(d.bufFree, b)
	}
}

// AddPool starts tracking a pool of the given byte size. Mapping is clean:
// cache and durable views agree at that instant.
func (d *Domain) AddPool(pool uint32, size uint64) {
	lines := uint32((size + LineBytes - 1) / LineBytes)
	d.pools[pool] = &poolState{
		lines:    lines,
		dirty:    make([]uint64, (lines+63)/64),
		inflight: make(map[uint32]*[LineBytes]byte),
	}
}

// DropPool stops tracking a pool (it was unmapped; the host has already
// decided what became of its bytes).
func (d *Domain) DropPool(pool uint32) {
	if ps, ok := d.pools[pool]; ok {
		for k, buf := range ps.inflight {
			delete(ps.inflight, k)
			d.putBuf(buf)
		}
	}
	delete(d.hot, pool)
	delete(d.pools, pool)
}

// Clean discards a pool's volatile state without unmapping it: the host
// just synced the cache view to the durable view wholesale (pool creation,
// bulk load), so nothing is newer in cache any more.
func (d *Domain) Clean(pool uint32) {
	ps, ok := d.pools[pool]
	if !ok {
		return
	}
	for i := range ps.dirty {
		ps.dirty[i] = 0
	}
	for k, buf := range ps.inflight {
		delete(ps.inflight, k)
		d.putBuf(buf)
	}
	delete(d.hot, pool)
}

// step numbers one event and, when armed, crashes just before applying it.
// Armed media faults (ArmFlip) land first: a flip scheduled at event i hits
// the media just before event i is applied, so a crash armed at the same
// index observes the corrupted bytes — exactly the ordering a replay token
// that covers both must reproduce.
func (d *Domain) step() {
	if atomic.LoadUint32(&d.poisoned) != 0 {
		panic(&CrashSignal{Event: d.events, Poisoned: true})
	}
	for len(d.flips) > 0 && d.flips[0].at <= d.events {
		af := d.flips[0]
		d.flips = d.flips[1:]
		d.applyFlip(af.f, af.mem)
	}
	if d.armed && d.events == d.armAt {
		d.armed = false
		if d.poisonOnCrash {
			atomic.StoreUint32(&d.poisoned, 1)
		}
		panic(&CrashSignal{Event: d.armAt})
	}
	d.events++
}

// SetPoisonOnCrash controls what happens after an armed crash fires. Off
// (the default, matching the sequential harnesses), the domain keeps
// running — the one goroutine that caught the signal owns what happens
// next. On, the domain is poisoned: power is off, so every later event —
// from any goroutine that raced past the crash point — panics with a
// secondary (Poisoned) signal instead of mutating state that no real
// machine could have touched. Concurrent harnesses need this, because the
// crashing worker cannot stop its peers any other way. Disarm and Crash
// lift the poisoning.
func (d *Domain) SetPoisonOnCrash(on bool) { d.poisonOnCrash = on }

// Events returns the number of events applied so far.
func (d *Domain) Events() uint64 { return d.events }

// Arm schedules a crash just before event index at (as numbered from the
// Domain's creation, see Events). The panic carries a *CrashSignal.
func (d *Domain) Arm(at uint64) { d.armed, d.armAt = true, at }

// Disarm cancels a pending Arm and lifts any poisoning, so the domain can
// keep running after a recovered crash (the sequential harnesses recover
// and verify on the same domain).
func (d *Domain) Disarm() {
	d.armed = false
	atomic.StoreUint32(&d.poisoned, 0)
}

// Poisoned reports whether an armed crash has fired and the domain is dead.
// Safe to call from any goroutine.
func (d *Domain) Poisoned() bool { return atomic.LoadUint32(&d.poisoned) != 0 }

// Store records a store of size bytes at a pool offset: one event, and the
// covered lines become dirty.
func (d *Domain) Store(pool, off, size uint32) {
	d.step()
	ps, ok := d.pools[pool]
	if !ok || size == 0 {
		return
	}
	for line := off / LineBytes; line <= (off+size-1)/LineBytes && line < ps.lines; line++ {
		ps.setDirty(line)
	}
}

// CLWB records a cache-line write-back: one event; if the line is dirty its
// current cache content is snapshotted in-flight (write-back started, not
// yet ordered). A clean-line CLWB is a no-op, as on hardware.
func (d *Domain) CLWB(pool, off uint32, mem Memory) {
	d.step()
	ps, ok := d.pools[pool]
	if !ok {
		return
	}
	line := off / LineBytes
	if line >= ps.lines || !ps.isDirty(line) {
		return
	}
	d.snapshot(pool, ps, line, mem)
}

// CLWBRange records one cache-line write-back per line covering
// [off, off+size): event-for-event identical to calling CLWB on each
// covered line (so armed crash points land at the same event indices),
// but the pool resolves once per call instead of once per line. Hosts on
// a hot commit path use this to amortize per-line overhead.
func (d *Domain) CLWBRange(pool, off, size uint32, mem Memory) {
	if size == 0 {
		return
	}
	ps := d.pools[pool]
	first := off / LineBytes
	last := (off + size - 1) / LineBytes
	for line := first; line <= last; line++ {
		d.step()
		if ps == nil || line >= ps.lines || !ps.isDirty(line) {
			continue
		}
		d.snapshot(pool, ps, line, mem)
	}
}

// snapshot captures a dirty line's cache content in-flight, recycling a
// drained buffer when one is available and indexing the pool as hot.
func (d *Domain) snapshot(pool uint32, ps *poolState, line uint32, mem Memory) {
	buf, ok := ps.inflight[line*LineBytes]
	if !ok {
		buf = d.getBuf()
		ps.inflight[line*LineBytes] = buf
		d.hot[pool] = ps
	}
	if mem.ReadCacheLine(pool, line*LineBytes, buf) {
		ps.clrDirty(line)
	}
}

// SFence records a store fence: one event, and every in-flight snapshot in
// the domain drains to the durable view. Lines re-dirtied after their CLWB
// stay dirty — the fence ordered the snapshot, not the newer stores. Only
// pools with in-flight lines (the hot index) are visited.
func (d *Domain) SFence(mem Memory) {
	d.step()
	for pool, ps := range d.hot {
		for off, buf := range ps.inflight {
			mem.WriteDurableWords(pool, off, buf, 0xFF)
			delete(ps.inflight, off)
			d.putBuf(buf)
		}
		delete(d.hot, pool)
	}
}

// VolatileLines counts the lines currently newer in cache than in NVM
// (dirty or in-flight) across all pools.
func (d *Domain) VolatileLines() int {
	n := 0
	for _, ps := range d.pools {
		for _, w := range ps.dirty {
			n += bits.OnesCount64(w)
		}
		for off := range ps.inflight {
			if ps.isDirty(off / LineBytes) {
				continue // counted once
			}
			n++
		}
	}
	return n
}

// volatileSet returns every volatile line sorted by (pool, offset), so
// seeded policies consume randomness in a deterministic order.
func (d *Domain) volatileSet() []Line {
	var lines []Line
	for pool, ps := range d.pools {
		for wi, w := range ps.dirty {
			for w != 0 {
				b := bits.TrailingZeros64(w)
				w &^= 1 << b
				lines = append(lines, Line{Pool: pool, Off: (uint32(wi)*64 + uint32(b)) * LineBytes})
			}
		}
		for off := range ps.inflight {
			if !ps.isDirty(off / LineBytes) {
				lines = append(lines, Line{Pool: pool, Off: off})
			}
		}
	}
	sort.Slice(lines, func(i, j int) bool {
		if lines[i].Pool != lines[j].Pool {
			return lines[i].Pool < lines[j].Pool
		}
		return lines[i].Off < lines[j].Off
	})
	return lines
}

// Crash loses power: the policy decides which volatile lines (and which
// 8-byte words of them) reach the durable view anyway; everything else is
// gone. All volatile state is discarded. The report records the exact
// survivor set so the outcome can be replayed with an Explicit policy.
func (d *Domain) Crash(pol Policy, mem Memory) Report {
	atomic.StoreUint32(&d.poisoned, 0) // power-cycling revives the machine
	lines := d.volatileSet()
	rng := newRng(pol.Seed)
	rep := Report{Kind: pol.Kind, Seed: pol.Seed, Volatile: len(lines)}
	var buf [LineBytes]byte
	for _, ln := range lines {
		mask := pol.mask(ln, &rng)
		if mask == 0 {
			rep.Dropped = append(rep.Dropped, ln)
			continue
		}
		if !mem.ReadCacheLine(ln.Pool, ln.Off, &buf) {
			rep.Dropped = append(rep.Dropped, ln)
			continue
		}
		mem.WriteDurableWords(ln.Pool, ln.Off, &buf, mask)
		rep.Kept = append(rep.Kept, LineOutcome{Line: ln, Mask: mask})
	}
	for pool, ps := range d.pools {
		for i := range ps.dirty {
			ps.dirty[i] = 0
		}
		for k, buf := range ps.inflight {
			delete(ps.inflight, k)
			d.putBuf(buf)
		}
		delete(d.hot, pool)
	}
	return rep
}
