package nvmsim

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
)

// Kind enumerates the adversarial crash policies.
type Kind int

const (
	// DropAll loses every volatile line: only what an SFENCE ordered is
	// durable. This is the minimal legal post-crash state and the
	// baseline adversary for missing-flush bugs.
	DropAll Kind = iota
	// KeepRandom lets each volatile line independently survive with
	// probability 1/2 — cache evictions and started write-backs that
	// happened to complete. It exposes ordering bugs: states where a
	// *later* store survived an *earlier* one it depended on.
	KeepRandom
	// Torn is KeepRandom at line granularity with word-granular tearing
	// inside surviving lines: each 8-byte word of a kept line survives
	// independently, matching the simulated machine's 8-byte store
	// atomicity. It exposes multi-word publish bugs.
	Torn
	// Explicit replays an exact survivor set (line → word mask), used
	// for deterministic replay of a reported failure and for
	// counterexample minimization.
	Explicit
)

func (k Kind) String() string {
	switch k {
	case DropAll:
		return "drop-all"
	case KeepRandom:
		return "keep-random"
	case Torn:
		return "torn"
	case Explicit:
		return "explicit"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// ParseKind parses the String form of a policy kind.
func ParseKind(s string) (Kind, error) {
	switch s {
	case "drop-all":
		return DropAll, nil
	case "keep-random":
		return KeepRandom, nil
	case "torn":
		return Torn, nil
	case "explicit":
		return Explicit, nil
	}
	return 0, fmt.Errorf("nvmsim: unknown policy kind %q", s)
}

// Policy decides the fate of each volatile line at a crash.
type Policy struct {
	Kind Kind
	// Seed drives KeepRandom and Torn. The same seed over the same
	// volatile set reproduces the same outcome.
	Seed uint64
	// Keep is the Explicit survivor set: line → word-survival mask
	// (bit i = 8-byte word i survives). Absent lines are dropped.
	Keep map[Line]byte
}

// DropAllPolicy returns the drop-everything policy.
func DropAllPolicy() Policy { return Policy{Kind: DropAll} }

// KeepRandomPolicy returns a seeded random-survivor policy.
func KeepRandomPolicy(seed uint64) Policy { return Policy{Kind: KeepRandom, Seed: seed} }

// TornPolicy returns a seeded torn-line policy.
func TornPolicy(seed uint64) Policy { return Policy{Kind: Torn, Seed: seed} }

// ExplicitPolicy returns a policy replaying an exact survivor set.
func ExplicitPolicy(keep map[Line]byte) Policy { return Policy{Kind: Explicit, Keep: keep} }

// mask returns the word-survival mask for one volatile line, consuming the
// policy's randomness in volatile-set order.
func (p Policy) mask(ln Line, rng *rng) byte {
	switch p.Kind {
	case DropAll:
		return 0
	case KeepRandom:
		if rng.next()&1 == 0 {
			return 0
		}
		return 0xFF
	case Torn:
		r := rng.next()
		if r&1 == 0 {
			return 0
		}
		return byte(r >> 32) // word mask; may itself be 0x00 or 0xFF
	case Explicit:
		return p.Keep[ln]
	default:
		return 0
	}
}

// LineOutcome records that a line survived a crash with the given word
// mask.
type LineOutcome struct {
	Line Line
	Mask byte
}

// Report describes what a Crash actually did.
type Report struct {
	Kind     Kind
	Seed     uint64
	Volatile int           // volatile lines at the crash
	Kept     []LineOutcome // survivors, in (pool, offset) order
	// Dropped lists the volatile lines that did not survive, in (pool,
	// offset) order. Counterexample minimization restores these one by one
	// to find the smallest loss that still triggers a failure.
	Dropped []Line
}

// Explicit converts the report's exact outcome into a replayable policy.
func (r Report) Explicit() Policy {
	keep := make(map[Line]byte, len(r.Kept))
	for _, k := range r.Kept {
		keep[k.Line] = k.Mask
	}
	return ExplicitPolicy(keep)
}

// KeptString renders the survivor set compactly ("pool:off/mask,...") for
// replay tokens and failure reports.
func (r Report) KeptString() string {
	if len(r.Kept) == 0 {
		return "none"
	}
	parts := make([]string, len(r.Kept))
	for i, k := range r.Kept {
		parts[i] = fmt.Sprintf("%d:%#x/%02x", k.Line.Pool, k.Line.Off, k.Mask)
	}
	return strings.Join(parts, ",")
}

// ParseKept parses KeptString output back into an Explicit survivor set.
func ParseKept(s string) (map[Line]byte, error) {
	keep := make(map[Line]byte)
	if s == "none" || s == "" {
		return keep, nil
	}
	for _, part := range strings.Split(s, ",") {
		poolS, rest, ok1 := strings.Cut(part, ":")
		offS, maskS, ok2 := strings.Cut(rest, "/")
		if !ok1 || !ok2 {
			return nil, fmt.Errorf("nvmsim: bad kept-line %q", part)
		}
		pool, err1 := strconv.ParseUint(poolS, 10, 32)
		off, err2 := strconv.ParseUint(offS, 0, 32)
		mask, err3 := strconv.ParseUint(maskS, 16, 8)
		if err1 != nil || err2 != nil || err3 != nil {
			return nil, fmt.Errorf("nvmsim: bad kept-line %q", part)
		}
		keep[Line{Pool: uint32(pool), Off: uint32(off)}] = byte(mask)
	}
	return keep, nil
}

// SortedKeep returns an Explicit policy's lines in deterministic order
// (for rendering and minimization).
func SortedKeep(keep map[Line]byte) []LineOutcome {
	out := make([]LineOutcome, 0, len(keep))
	for ln, m := range keep {
		out = append(out, LineOutcome{Line: ln, Mask: m})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Line.Pool != out[j].Line.Pool {
			return out[i].Line.Pool < out[j].Line.Pool
		}
		return out[i].Line.Off < out[j].Line.Off
	})
	return out
}

// rng is a splitmix64 generator: tiny, fast, and stable across Go versions
// so seeds in recorded replay tokens stay valid forever.
type rng struct{ s uint64 }

func newRng(seed uint64) rng { return rng{s: seed} }

func (r *rng) next() uint64 {
	r.s += 0x9e3779b97f4a7c15
	z := r.s
	z ^= z >> 30
	z *= 0xbf58476d1ce4e5b9
	z ^= z >> 27
	z *= 0x94d049bb133111eb
	z ^= z >> 31
	return z
}
