package nvmsim

import (
	"reflect"
	"testing"
)

// fakeMem is a two-image memory: cache[] is what the program sees, durable[]
// is what survives a crash. One pool, id 1.
type fakeMem struct {
	cache   []byte
	durable []byte
}

func newFakeMem(size int) *fakeMem {
	return &fakeMem{cache: make([]byte, size), durable: make([]byte, size)}
}

func (m *fakeMem) ReadCacheLine(pool, off uint32, dst *[LineBytes]byte) bool {
	if pool != 1 || int(off)+LineBytes > len(m.cache) {
		return false
	}
	copy(dst[:], m.cache[off:off+LineBytes])
	return true
}

func (m *fakeMem) WriteDurableWords(pool, off uint32, src *[LineBytes]byte, mask byte) {
	if pool != 1 || int(off)+LineBytes > len(m.durable) {
		return
	}
	for w := 0; w < wordsPerLine; w++ {
		if mask&(1<<w) != 0 {
			copy(m.durable[int(off)+w*8:int(off)+w*8+8], src[w*8:w*8+8])
		}
	}
}

func (m *fakeMem) ReadDurableLine(pool, off uint32, dst *[LineBytes]byte) bool {
	if pool != 1 || int(off)+LineBytes > len(m.durable) {
		return false
	}
	copy(dst[:], m.durable[off:off+LineBytes])
	return true
}

func (m *fakeMem) WriteCacheLine(pool, off uint32, src *[LineBytes]byte) bool {
	if pool != 1 || int(off)+LineBytes > len(m.cache) {
		return false
	}
	copy(m.cache[off:off+LineBytes], src[:])
	return true
}

func (m *fakeMem) store(d *Domain, off uint32, b []byte) {
	d.Store(1, off, uint32(len(b)))
	copy(m.cache[off:], b)
}

func bytesAt(b []byte, off, n int) []byte { return b[off : off+n] }

func TestStoreCLWBFenceLifecycle(t *testing.T) {
	m := newFakeMem(4 * LineBytes)
	d := NewDomain()
	d.AddPool(1, uint64(len(m.cache)))

	m.store(d, 0, []byte{1, 2, 3, 4, 5, 6, 7, 8})
	if got := d.VolatileLines(); got != 1 {
		t.Fatalf("after store: %d volatile lines, want 1", got)
	}
	// CLWB alone is not durability.
	d.CLWB(1, 0, m)
	if m.durable[0] != 0 {
		t.Fatal("CLWB without SFENCE must not reach the durable view")
	}
	if got := d.VolatileLines(); got != 1 {
		t.Fatalf("in-flight line must still be volatile, got %d", got)
	}
	// The fence drains it.
	d.SFence(m)
	if !reflect.DeepEqual(bytesAt(m.durable, 0, 8), []byte{1, 2, 3, 4, 5, 6, 7, 8}) {
		t.Fatalf("SFENCE did not drain: durable = %v", bytesAt(m.durable, 0, 8))
	}
	if got := d.VolatileLines(); got != 0 {
		t.Fatalf("after fence: %d volatile lines, want 0", got)
	}
	if got := d.Events(); got != 3 {
		t.Fatalf("store+clwb+sfence = %d events, want 3", got)
	}
}

func TestRedirtiedLineStaysVolatile(t *testing.T) {
	m := newFakeMem(2 * LineBytes)
	d := NewDomain()
	d.AddPool(1, uint64(len(m.cache)))

	m.store(d, 0, []byte{0xAA})
	d.CLWB(1, 0, m)
	// Newer store after the write-back snapshot: the fence must persist the
	// snapshot (0xAA), and the line must stay volatile for the newer value.
	m.store(d, 0, []byte{0xBB})
	d.SFence(m)
	if m.durable[0] != 0xAA {
		t.Fatalf("fence persisted %#x, want the CLWB-time snapshot 0xAA", m.durable[0])
	}
	if got := d.VolatileLines(); got != 1 {
		t.Fatalf("re-dirtied line must remain volatile, got %d lines", got)
	}
	// Crash drop-all: the newer value dies.
	d.Crash(DropAllPolicy(), m)
	if m.durable[0] != 0xAA {
		t.Fatalf("drop-all crash kept %#x, want 0xAA", m.durable[0])
	}
}

func TestStoreSpanningLines(t *testing.T) {
	m := newFakeMem(4 * LineBytes)
	d := NewDomain()
	d.AddPool(1, uint64(len(m.cache)))
	// 16 bytes straddling the line-0/line-1 boundary.
	m.store(d, LineBytes-8, make([]byte, 16))
	if got := d.VolatileLines(); got != 2 {
		t.Fatalf("straddling store dirtied %d lines, want 2", got)
	}
}

func TestDropAllCrash(t *testing.T) {
	m := newFakeMem(4 * LineBytes)
	d := NewDomain()
	d.AddPool(1, uint64(len(m.cache)))

	m.store(d, 0, []byte{1})
	d.CLWB(1, 0, m)
	d.SFence(m) // durable
	m.store(d, LineBytes, []byte{2})
	m.store(d, 2*LineBytes, []byte{3})
	d.CLWB(1, 2*LineBytes, m) // in-flight, never fenced

	rep := d.Crash(DropAllPolicy(), m)
	if rep.Volatile != 2 || len(rep.Kept) != 0 {
		t.Fatalf("report = %+v, want 2 volatile 0 kept", rep)
	}
	if m.durable[0] != 1 || m.durable[LineBytes] != 0 || m.durable[2*LineBytes] != 0 {
		t.Fatalf("drop-all: durable = %v %v %v, want 1 0 0",
			m.durable[0], m.durable[LineBytes], m.durable[2*LineBytes])
	}
	if d.VolatileLines() != 0 {
		t.Fatal("crash must discard all volatile state")
	}
}

// TestKeepRandomDeterminism: same seed + same volatile set → identical
// outcome; different seeds eventually differ.
func TestKeepRandomDeterminism(t *testing.T) {
	run := func(seed uint64) (Report, []byte) {
		m := newFakeMem(16 * LineBytes)
		d := NewDomain()
		d.AddPool(1, uint64(len(m.cache)))
		for i := 0; i < 16; i++ {
			m.store(d, uint32(i*LineBytes), []byte{byte(i + 1)})
		}
		rep := d.Crash(KeepRandomPolicy(seed), m)
		return rep, append([]byte(nil), m.durable...)
	}
	repA, durA := run(42)
	repB, durB := run(42)
	if !reflect.DeepEqual(repA, repB) || !reflect.DeepEqual(durA, durB) {
		t.Fatal("same seed must reproduce the identical crash outcome")
	}
	differs := false
	for seed := uint64(0); seed < 16 && !differs; seed++ {
		rep, _ := run(seed)
		differs = !reflect.DeepEqual(rep.Kept, repA.Kept)
	}
	if !differs {
		t.Fatal("16 different seeds all produced the same outcome")
	}
	// keep-random survivors are whole lines.
	for _, k := range repA.Kept {
		if k.Mask != 0xFF {
			t.Fatalf("keep-random kept a partial line: %+v", k)
		}
	}
}

// TestTornCrash: torn lines persist only a subset of 8-byte words, and the
// word granularity is respected exactly.
func TestTornCrash(t *testing.T) {
	var rep Report
	var m *fakeMem
	// Find a seed that actually tears a line (mask not 0x00/0xFF).
	for seed := uint64(0); seed < 200; seed++ {
		m = newFakeMem(8 * LineBytes)
		d := NewDomain()
		d.AddPool(1, uint64(len(m.cache)))
		for i := 0; i < 8; i++ {
			line := make([]byte, LineBytes)
			for j := range line {
				line[j] = 0xCC
			}
			m.store(d, uint32(i*LineBytes), line)
		}
		rep = d.Crash(TornPolicy(seed), m)
		for _, k := range rep.Kept {
			if k.Mask != 0 && k.Mask != 0xFF {
				goto found
			}
		}
	}
	t.Fatal("no seed in 0..199 tore a line")
found:
	for _, k := range rep.Kept {
		for w := 0; w < wordsPerLine; w++ {
			got := m.durable[int(k.Line.Off)+w*8]
			if k.Mask&(1<<w) != 0 && got != 0xCC {
				t.Fatalf("line %v word %d: kept per mask %02x but durable is %#x", k.Line, w, k.Mask, got)
			}
			if k.Mask&(1<<w) == 0 && got != 0 {
				t.Fatalf("line %v word %d: dropped per mask %02x but durable is %#x", k.Line, w, k.Mask, got)
			}
		}
	}
}

// TestExplicitReplay: a recorded report replays to the identical durable
// image via its Explicit policy, and the KeptString round-trips.
func TestExplicitReplay(t *testing.T) {
	world := func() (*fakeMem, *Domain) {
		m := newFakeMem(16 * LineBytes)
		d := NewDomain()
		d.AddPool(1, uint64(len(m.cache)))
		for i := 0; i < 16; i++ {
			m.store(d, uint32(i*LineBytes), []byte{byte(i + 1), byte(i + 2)})
		}
		return m, d
	}
	m1, d1 := world()
	rep := d1.Crash(TornPolicy(7), m1)

	m2, d2 := world()
	rep2 := d2.Crash(rep.Explicit(), m2)
	if !reflect.DeepEqual(m1.durable, m2.durable) {
		t.Fatal("explicit replay did not reproduce the durable image")
	}
	if !reflect.DeepEqual(rep.Kept, rep2.Kept) {
		t.Fatalf("replay kept %v, original kept %v", rep2.Kept, rep.Kept)
	}

	// KeptString → ParseKept → same survivor set.
	keep, err := ParseKept(rep.KeptString())
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(SortedKeep(keep), rep.Kept) {
		t.Fatalf("KeptString round-trip: %v vs %v", SortedKeep(keep), rep.Kept)
	}
	if _, err := ParseKept("none"); err != nil {
		t.Fatal(err)
	}
	if _, err := ParseKept("garbage"); err == nil {
		t.Fatal("ParseKept must reject malformed input")
	}
}

func TestArmCrashSignal(t *testing.T) {
	m := newFakeMem(4 * LineBytes)
	d := NewDomain()
	d.AddPool(1, uint64(len(m.cache)))

	m.store(d, 0, []byte{1}) // event 0
	d.Arm(2)                 // crash just before event 2 (the fence)
	crashed := func() (sig *CrashSignal) {
		defer func() {
			if r := recover(); r != nil {
				var ok bool
				if sig, ok = AsCrashSignal(r); !ok {
					panic(r)
				}
			}
		}()
		d.CLWB(1, 0, m) // event 1
		d.SFence(m)     // event 2 — preempted
		return nil
	}()
	if crashed == nil || crashed.Event != 2 {
		t.Fatalf("expected CrashSignal at event 2, got %+v", crashed)
	}
	if m.durable[0] != 0 {
		t.Fatal("the armed event must not have happened")
	}
	// After the signal the domain is disarmed: the retried fence runs.
	d.SFence(m)
	if m.durable[0] != 1 {
		t.Fatal("disarmed fence must drain normally")
	}

	d.Arm(100)
	d.Disarm()
	d.SFence(m) // must not panic
}

func TestPolicyKindStrings(t *testing.T) {
	for _, k := range []Kind{DropAll, KeepRandom, Torn, Explicit} {
		got, err := ParseKind(k.String())
		if err != nil || got != k {
			t.Fatalf("ParseKind(%q) = %v, %v", k.String(), got, err)
		}
	}
	if _, err := ParseKind("bogus"); err == nil {
		t.Fatal("ParseKind must reject unknown kinds")
	}
}

func TestCleanDiscardsVolatileState(t *testing.T) {
	m := newFakeMem(4 * LineBytes)
	d := NewDomain()
	d.AddPool(1, uint64(len(m.cache)))
	m.store(d, 0, []byte{9})
	d.CLWB(1, 0, m)
	m.store(d, LineBytes, []byte{8})
	d.Clean(1)
	if d.VolatileLines() != 0 {
		t.Fatal("Clean must drop dirty and in-flight state")
	}
	d.SFence(m)
	if m.durable[0] != 0 {
		t.Fatal("Clean must also drop in-flight snapshots")
	}
}
