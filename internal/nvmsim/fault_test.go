package nvmsim

import (
	"testing"
)

// A flip in a clean line must corrupt both views: the durable bytes decay,
// and the program's next load refills from media.
func TestFlipBitCleanLineHitsBothViews(t *testing.T) {
	m := newFakeMem(4 * LineBytes)
	d := NewDomain()
	d.AddPool(1, uint64(len(m.cache)))

	m.store(d, 0, []byte{0x00})
	d.CLWB(1, 0, m)
	d.SFence(m)
	before := d.Events()
	if !d.FlipBit(1, 0, 3, m) {
		t.Fatal("FlipBit on a mapped line reported failure")
	}
	if d.Events() != before+1 {
		t.Fatalf("FlipBit must be one numbered event: %d -> %d", before, d.Events())
	}
	if m.durable[0] != 1<<3 {
		t.Fatalf("durable byte = %#x, want %#x", m.durable[0], 1<<3)
	}
	if m.cache[0] != 1<<3 {
		t.Fatalf("clean-line flip must reach the cache view too: cache byte = %#x", m.cache[0])
	}
}

// A dirty line shields the program: the flip lands in the durable view
// only, and draining the newer content overwrites it.
func TestFlipBitDirtyLineShieldsCache(t *testing.T) {
	m := newFakeMem(2 * LineBytes)
	d := NewDomain()
	d.AddPool(1, uint64(len(m.cache)))

	m.store(d, 0, []byte{0xAA})
	d.FlipBit(1, 0, 0, m)
	if m.cache[0] != 0xAA {
		t.Fatalf("dirty-line flip must not touch the cache view: %#x", m.cache[0])
	}
	if m.durable[0] != 0x01 {
		t.Fatalf("durable view must still take the flip: %#x", m.durable[0])
	}
	d.CLWB(1, 0, m)
	d.SFence(m)
	if m.durable[0] != 0xAA {
		t.Fatalf("drained write-back must overwrite the flipped bit: %#x", m.durable[0])
	}
}

func TestCorruptLinesDeterministic(t *testing.T) {
	run := func() ([]Flip, []byte) {
		m := newFakeMem(16 * LineBytes)
		d := NewDomain()
		d.AddPool(1, uint64(len(m.cache)))
		flips := d.CorruptLines(5, 42, m)
		return flips, m.durable
	}
	f1, d1 := run()
	f2, d2 := run()
	if len(f1) != 5 {
		t.Fatalf("wanted 5 flips, got %d", len(f1))
	}
	for i := range f1 {
		if f1[i] != f2[i] {
			t.Fatalf("flip %d differs across same-seed runs: %v vs %v", i, f1[i], f2[i])
		}
	}
	for i := range d1 {
		if d1[i] != d2[i] {
			t.Fatalf("durable images diverge at byte %d", i)
		}
	}
}

// An armed flip lands just before its event index, and an armed crash at
// the same index sees the corrupted media.
func TestArmFlipOrdersBeforeCrash(t *testing.T) {
	m := newFakeMem(2 * LineBytes)
	d := NewDomain()
	d.AddPool(1, uint64(len(m.cache)))

	m.store(d, 0, []byte{0x00}) // event 0
	d.CLWB(1, 0, m)             // event 1
	d.SFence(m)                 // event 2
	d.ArmFlip(4, Flip{Line: Line{Pool: 1, Off: 0}, Bit: 7}, m)
	d.Store(1, LineBytes, 8) // event 3: flip not yet due
	if m.durable[0] != 0 {
		t.Fatalf("flip landed early: %#x", m.durable[0])
	}
	d.Arm(4)
	func() {
		defer func() {
			if _, ok := AsCrashSignal(recover()); !ok {
				t.Fatal("armed crash did not fire")
			}
		}()
		d.Store(1, LineBytes, 8) // event 4: flip lands, then crash preempts
	}()
	if m.durable[0] != 1<<7 {
		t.Fatalf("armed flip must land before the same-index crash: %#x", m.durable[0])
	}
	if d.ArmedFlips() != 0 {
		t.Fatalf("armed flip still pending: %d", d.ArmedFlips())
	}
}
