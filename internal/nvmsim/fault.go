package nvmsim

import "sort"

// Media faults. A Flip names one bit of one durable line; the Domain can
// apply it immediately (FlipBit, CorruptLines — each application is a
// numbered event, so replay tokens cover corruption points exactly like
// crash points) or arm it to fire just before a chosen event index
// (ArmFlip, which composes with Arm to crash into freshly corrupted
// media).
//
// A flip always lands in the durable view — that is what "media fault"
// means. When the affected line is clean (not dirty, no in-flight
// snapshot), the cache view is rewritten too: a clean line's next load
// refills from media, so the running program observes the corruption. A
// dirty or in-flight line shields the program until its newer content
// drains, overwriting the flipped bit — also what real hardware does.
//
// Whether a flip is *detectable* is the host's business, not the
// Domain's: internal/pmem layers CRC32C checksums and XOR parity on top
// and distinguishes detect-mode targets (object payloads, caught by
// VerifyOnRead) from silent-mode targets (checksum words, parity lines —
// only a scrub notices).

// Flip names a single-bit media fault: one bit (0..511) of one line.
type Flip struct {
	Line Line
	Bit  uint16
}

// armedFlip is a Flip scheduled to land just before a chosen event.
type armedFlip struct {
	at  uint64
	f   Flip
	mem Memory
}

// applyFlip XORs the bit into the durable view and, when the line is
// clean, into the cache view. It reports whether the line existed.
func (d *Domain) applyFlip(f Flip, mem Memory) bool {
	var buf [LineBytes]byte
	if !mem.ReadDurableLine(f.Line.Pool, f.Line.Off, &buf) {
		return false
	}
	buf[f.Bit/8] ^= 1 << (f.Bit % 8)
	mem.WriteDurableWords(f.Line.Pool, f.Line.Off, &buf, 0xFF)
	ps, ok := d.pools[f.Line.Pool]
	if !ok {
		return true
	}
	line := f.Line.Off / LineBytes
	if line >= ps.lines || ps.isDirty(line) {
		return true
	}
	if _, inflight := ps.inflight[f.Line.Off]; inflight {
		return true
	}
	if !mem.ReadCacheLine(f.Line.Pool, f.Line.Off, &buf) {
		return true
	}
	buf[f.Bit/8] ^= 1 << (f.Bit % 8)
	mem.WriteCacheLine(f.Line.Pool, f.Line.Off, &buf)
	return true
}

// FlipBit flips one bit of one durable line right now. It is one numbered
// event: the event counter steps first, so an armed crash at this index
// preempts the flip and a replay token recorded here reproduces it.
func (d *Domain) FlipBit(pool, off uint32, bit uint16, mem Memory) bool {
	d.step()
	return d.applyFlip(Flip{Line: Line{Pool: pool, Off: off & ^uint32(LineBytes-1)}, Bit: bit % (LineBytes * 8)}, mem)
}

// CorruptLines flips n random bits across the mapped pools, each flip one
// numbered event, and returns the flips applied. The same seed over the
// same pool set yields the same flips (pools are visited in sorted id
// order; the generator is the replay-stable splitmix64).
func (d *Domain) CorruptLines(n int, seed uint64, mem Memory) []Flip {
	ids := make([]uint32, 0, len(d.pools))
	for id := range d.pools {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	if len(ids) == 0 || n <= 0 {
		return nil
	}
	r := newRng(seed)
	flips := make([]Flip, 0, n)
	for len(flips) < n {
		id := ids[r.next()%uint64(len(ids))]
		ps := d.pools[id]
		if ps.lines == 0 {
			continue
		}
		f := Flip{
			Line: Line{Pool: id, Off: uint32(r.next()%uint64(ps.lines)) * LineBytes},
			Bit:  uint16(r.next() % (LineBytes * 8)),
		}
		if d.FlipBit(f.Line.Pool, f.Line.Off, f.Bit, mem) {
			flips = append(flips, f)
		}
	}
	return flips
}

// ArmFlip schedules f to land just before event index at (compare Arm).
// The arming itself is not an event and the armed flip's application is
// not one either — the media decays between instructions, it does not
// execute one. Multiple flips may be armed; same-index flips land in
// arming order.
func (d *Domain) ArmFlip(at uint64, f Flip, mem Memory) {
	f.Line.Off &= ^uint32(LineBytes - 1)
	f.Bit %= LineBytes * 8
	d.flips = append(d.flips, armedFlip{at: at, f: f, mem: mem})
	sort.SliceStable(d.flips, func(i, j int) bool { return d.flips[i].at < d.flips[j].at })
}

// ArmedFlips reports how many armed flips have not yet landed.
func (d *Domain) ArmedFlips() int { return len(d.flips) }
