package polb

import (
	"strings"

	"potgo/internal/obs"
)

// MetricPrefix returns the design's metric namespace ("polb.pipelined",
// "polb.parallel").
func (d Design) MetricPrefix() string {
	return "polb." + strings.ToLower(d.String())
}

// PublishMetrics adds the POLB's counters to the registry under the
// design-qualified namespace (polb.pipelined.miss, polb.parallel.hit, ...)
// and refreshes the miss-rate gauge. Safe on a nil registry.
func (p *POLB) PublishMetrics(reg *obs.Registry) {
	if reg == nil {
		return
	}
	s := p.Stats()
	prefix := p.design.MetricPrefix() + "."
	reg.Counter(prefix + "hit").Add(s.Hits)
	reg.Counter(prefix + "miss").Add(s.Misses)
	reg.Gauge(prefix + "miss_rate").Set(s.MissRate())
	reg.Gauge(prefix + "entries").Set(float64(p.Len()))
}
