package polb

import (
	"testing"
	"testing/quick"

	"potgo/internal/oid"
)

func TestDesignString(t *testing.T) {
	if Pipelined.String() != "Pipelined" || Parallel.String() != "Parallel" {
		t.Error("design names")
	}
	if Design(9).String() == "" {
		t.Error("unknown design must render")
	}
}

func TestPipelinedTagIsPool(t *testing.T) {
	p := New(Pipelined, 4)
	a := oid.New(7, 0x100)
	b := oid.New(7, 0xffff00) // same pool, far-away offset
	p.Fill(a, 0x7000)
	if v, hit := p.Lookup(b); !hit || v != 0x7000 {
		t.Errorf("Pipelined entry must cover the whole pool: %#x, %t", v, hit)
	}
	if _, hit := p.Lookup(oid.New(8, 0x100)); hit {
		t.Error("different pool must miss")
	}
}

func TestParallelTagIsPoolPlusPage(t *testing.T) {
	p := New(Parallel, 4)
	a := oid.New(7, 0x1000) // page 1 of pool 7
	samePage := oid.New(7, 0x1abc)
	otherPage := oid.New(7, 0x2000)
	p.Fill(a, 0x9000)
	if v, hit := p.Lookup(samePage); !hit || v != 0x9000 {
		t.Errorf("same page must hit: %#x, %t", v, hit)
	}
	if _, hit := p.Lookup(otherPage); hit {
		t.Error("different page of the same pool must miss under Parallel")
	}
}

func TestLRUReplacement(t *testing.T) {
	p := New(Pipelined, 2)
	p.Fill(oid.New(1, 0), 0x1000)
	p.Fill(oid.New(2, 0), 0x2000)
	p.Lookup(oid.New(1, 0))       // pool 1 MRU
	p.Fill(oid.New(3, 0), 0x3000) // evicts pool 2
	if !p.Probe(oid.New(1, 0)) {
		t.Error("MRU pool must survive")
	}
	if p.Probe(oid.New(2, 0)) {
		t.Error("LRU pool must be evicted")
	}
	if !p.Probe(oid.New(3, 0)) {
		t.Error("filled pool must be present")
	}
	if p.Len() != 2 {
		t.Errorf("Len = %d", p.Len())
	}
}

func TestFillRefreshesExisting(t *testing.T) {
	p := New(Pipelined, 2)
	p.Fill(oid.New(1, 0), 0x1000)
	p.Fill(oid.New(1, 0), 0x1111)
	if p.Len() != 1 {
		t.Errorf("duplicate fill grew CAM to %d", p.Len())
	}
	if v, _ := p.Lookup(oid.New(1, 0)); v != 0x1111 {
		t.Errorf("fill must refresh data: %#x", v)
	}
}

func TestZeroSizeNoPOLB(t *testing.T) {
	p := New(Pipelined, 0)
	p.Fill(oid.New(1, 0), 0x1000)
	if _, hit := p.Lookup(oid.New(1, 0)); hit {
		t.Error("size-0 POLB must always miss")
	}
	if p.Stats().Misses != 1 || p.Stats().Hits != 0 {
		t.Errorf("stats = %+v", p.Stats())
	}
}

func TestNegativeSizePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("negative size must panic")
		}
	}()
	New(Pipelined, -1)
}

func TestInvalidatePool(t *testing.T) {
	// Pipelined: one entry per pool.
	p := New(Pipelined, 8)
	p.Fill(oid.New(1, 0), 0x1000)
	p.Fill(oid.New(2, 0), 0x2000)
	p.InvalidatePool(1)
	if p.Probe(oid.New(1, 0)) {
		t.Error("invalidated pool resident (Pipelined)")
	}
	if !p.Probe(oid.New(2, 0)) {
		t.Error("other pool must survive (Pipelined)")
	}

	// Parallel: multiple page entries per pool; all must go.
	q := New(Parallel, 8)
	q.Fill(oid.New(1, 0x0000), 0xa000)
	q.Fill(oid.New(1, 0x1000), 0xb000)
	q.Fill(oid.New(2, 0x0000), 0xc000)
	q.InvalidatePool(1)
	if q.Probe(oid.New(1, 0x0000)) || q.Probe(oid.New(1, 0x1000)) {
		t.Error("invalidated pool pages resident (Parallel)")
	}
	if !q.Probe(oid.New(2, 0x0000)) {
		t.Error("other pool must survive (Parallel)")
	}
}

func TestFlushAndStats(t *testing.T) {
	p := New(Pipelined, 4)
	p.Fill(oid.New(1, 0), 0x1000)
	p.Lookup(oid.New(1, 0))
	p.Lookup(oid.New(2, 0))
	s := p.Stats()
	if s.Hits != 1 || s.Misses != 1 || s.Accesses() != 2 || s.MissRate() != 0.5 {
		t.Errorf("stats = %+v", s)
	}
	p.Flush()
	if p.Len() != 0 {
		t.Error("flush must empty")
	}
	p.ResetStats()
	if p.Stats().Accesses() != 0 {
		t.Error("reset must zero")
	}
	var empty Stats
	if empty.MissRate() != 0 {
		t.Error("empty miss rate is 0")
	}
}

func TestHardwareCostArithmetic(t *testing.T) {
	// Paper §5.1: 32-entry Pipelined = 128-byte tag + 256-byte data;
	// Parallel = 208-byte tag and data arrays.
	if got := 32 * Pipelined.TagBits() / 8; got != 128 {
		t.Errorf("Pipelined tag array = %d bytes", got)
	}
	if got := 32 * Pipelined.DataBits() / 8; got != 256 {
		t.Errorf("Pipelined data array = %d bytes", got)
	}
	if got := 32 * Parallel.TagBits() / 8; got != 208 {
		t.Errorf("Parallel tag array = %d bytes", got)
	}
	if got := 32 * Parallel.DataBits() / 8; got != 208 {
		t.Errorf("Parallel data array = %d bytes", got)
	}
}

// Property: the CAM never exceeds its configured size and a fill is always
// immediately visible.
func TestQuickCapacityAndVisibility(t *testing.T) {
	f := func(pools []uint16, sz uint8) bool {
		size := int(sz%16) + 1
		p := New(Pipelined, size)
		for _, pl := range pools {
			o := oid.New(oid.PoolID(pl)+1, 0)
			p.Fill(o, uint64(pl)<<12)
			if p.Len() > size {
				return false
			}
			if v, hit := p.Lookup(o); !hit || v != uint64(pl)<<12 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

// Property: with N pools and a POLB of at least N entries, after warm-up
// there are no further misses (paper: RANDOM/32 pools on a 32-entry
// Pipelined POLB misses only during warm-up).
func TestQuickWarmupOnlyMisses(t *testing.T) {
	f := func(seed int64) bool {
		const pools = 32
		p := New(Pipelined, pools)
		// Warm up.
		for i := 1; i <= pools; i++ {
			o := oid.New(oid.PoolID(i), 0)
			if _, hit := p.Lookup(o); !hit {
				p.Fill(o, uint64(i))
			}
		}
		missesAfterWarmup := p.Stats().Misses
		rng := seed
		for i := 0; i < 1000; i++ {
			rng = rng*6364136223846793005 + 1442695040888963407
			pool := oid.PoolID(uint64(rng)%pools) + 1
			if _, hit := p.Lookup(oid.New(pool, uint32(i))); !hit {
				return false
			}
		}
		return p.Stats().Misses == missesAfterWarmup
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}
