package polb

import (
	"testing"

	"potgo/internal/oid"
)

func TestSetAssociativeGeometry(t *testing.T) {
	if _, err := NewSetAssociative(Pipelined, 3, 4); err == nil {
		t.Error("non-power-of-two sets must fail")
	}
	if _, err := NewSetAssociative(Pipelined, 0, 4); err == nil {
		t.Error("zero sets must fail")
	}
	if _, err := NewSetAssociative(Pipelined, 4, -1); err == nil {
		t.Error("negative ways must fail")
	}
	p, err := NewSetAssociative(Pipelined, 8, 4)
	if err != nil {
		t.Fatal(err)
	}
	if p.Size() != 32 || p.Sets() != 8 {
		t.Errorf("size=%d sets=%d", p.Size(), p.Sets())
	}
}

func TestSetAssociativeConflictMisses(t *testing.T) {
	// 4 sets x 1 way: pools whose ids share low bits conflict even
	// though the total capacity (4) could hold them all in a CAM.
	p, err := NewSetAssociative(Pipelined, 4, 1)
	if err != nil {
		t.Fatal(err)
	}
	// Pools 4 and 8 both index set 0.
	p.Fill(oid.New(4, 0), 0x4000)
	p.Fill(oid.New(8, 0), 0x8000)
	if _, hit := p.Lookup(oid.New(4, 0)); hit {
		t.Error("pool 4 must have been evicted by the conflicting pool 8")
	}
	// A CAM of the same total size holds both.
	cam := New(Pipelined, 4)
	cam.Fill(oid.New(4, 0), 0x4000)
	cam.Fill(oid.New(8, 0), 0x8000)
	if _, hit := cam.Lookup(oid.New(4, 0)); !hit {
		t.Error("the CAM must keep both pools")
	}
}

func TestSetAssociativeIndexesByLowTagBits(t *testing.T) {
	p, err := NewSetAssociative(Pipelined, 4, 2)
	if err != nil {
		t.Fatal(err)
	}
	// Pools 1, 2, 3 land in different sets: all fit regardless of ways.
	for pool := oid.PoolID(1); pool <= 3; pool++ {
		p.Fill(oid.New(pool, 0), uint64(pool)<<12)
	}
	for pool := oid.PoolID(1); pool <= 3; pool++ {
		if v, hit := p.Lookup(oid.New(pool, 0)); !hit || v != uint64(pool)<<12 {
			t.Errorf("pool %d: %#x, %t", pool, v, hit)
		}
	}
}

func TestSetAssociativeInvalidateAndFlush(t *testing.T) {
	p, err := NewSetAssociative(Parallel, 4, 2)
	if err != nil {
		t.Fatal(err)
	}
	p.Fill(oid.New(1, 0x0000), 0xa000)
	p.Fill(oid.New(1, 0x1000), 0xb000)
	p.Fill(oid.New(2, 0x0000), 0xc000)
	p.InvalidatePool(1)
	if p.Probe(oid.New(1, 0x0000)) || p.Probe(oid.New(1, 0x1000)) {
		t.Error("invalidated pool pages resident")
	}
	if !p.Probe(oid.New(2, 0x0000)) {
		t.Error("other pool must survive")
	}
	p.Flush()
	if p.Len() != 0 {
		t.Error("flush must empty all sets")
	}
}

func TestCAMIsOneSet(t *testing.T) {
	cam := New(Pipelined, 32)
	if cam.Sets() != 1 || cam.Size() != 32 {
		t.Errorf("CAM geometry: sets=%d size=%d", cam.Sets(), cam.Size())
	}
}
