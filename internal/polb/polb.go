// Package polb implements the Persistent Object Look-aside Buffer of paper
// §4.1: a small, fully-associative, CAM-tagged cache inside the core that
// translates ObjectIDs on nvld/nvst instructions.
//
// Two microarchitectures are modelled (paper Figure 6):
//
//   - Pipelined: each entry maps a pool identifier to the pool's 64-bit
//     virtual base address. The POLB sits in the address-generation stage;
//     its output (vbase + offset) then flows to the TLB and L1 like any
//     virtual address. One entry covers an entire pool.
//
//   - Parallel: each entry maps the upper 52 bits of an ObjectID — the pool
//     id concatenated with the 20-bit page number within the pool — to a
//     physical frame. Because the low 12 bits index a virtually-indexed
//     physically-tagged L1 directly, the POLB look-up proceeds in parallel
//     with the cache access and adds no hit latency; but one entry now
//     covers only a 4 KB page, so the POLB sees far more contention.
//
// The paper's POLB is a fully-associative CAM with LRU replacement; that is
// what New builds. NewSetAssociative builds the cheaper set-associative
// variant for the ablation study (a real implementation might prefer it for
// cycle time), trading conflict misses for CAM cost. A size of zero models
// the "no POLB" configuration of the paper's sensitivity study (every
// hardware translation walks the POT).
package polb

import (
	"fmt"

	"potgo/internal/oid"
)

// Design selects the POLB microarchitecture.
type Design int

const (
	// Pipelined translates ObjectID → virtual address before the TLB/L1
	// (adds POLB latency to every nvld/nvst).
	Pipelined Design = iota
	// Parallel translates ObjectID → physical frame concurrently with
	// the L1 access (no added hit latency, higher miss rate and penalty).
	Parallel
)

func (d Design) String() string {
	switch d {
	case Pipelined:
		return "Pipelined"
	case Parallel:
		return "Parallel"
	default:
		return fmt.Sprintf("Design(%d)", int(d))
	}
}

// DefaultEntries is the paper's chosen POLB size (§5.1, sensitivity §6.3).
const DefaultEntries = 32

// Stats counts POLB look-ups.
type Stats struct {
	Hits, Misses uint64
}

// Accesses returns total look-ups.
func (s Stats) Accesses() uint64 { return s.Hits + s.Misses }

// MissRate returns misses/accesses (0 when unused).
func (s Stats) MissRate() float64 {
	if a := s.Accesses(); a > 0 {
		return float64(s.Misses) / float64(a)
	}
	return 0
}

type entry struct {
	tag  uint64
	data uint64
}

// POLB is the look-aside buffer: `sets` LRU-ordered ways arrays, with the
// fully-associative CAM as the one-set special case. Within each set,
// entries are kept most-recently-used first.
type POLB struct {
	design Design
	sets   int
	ways   int
	rows   [][]entry
	stats  Stats
}

// New builds the paper's fully-associative CAM with `size` entries. Size 0
// is the "no POLB" configuration.
func New(design Design, size int) *POLB {
	p, err := NewSetAssociative(design, 1, size)
	if err != nil {
		panic(err) // 1 set is always a valid geometry
	}
	return p
}

// NewSetAssociative builds a set-associative POLB with sets×ways entries,
// indexed by the low bits of the tag. sets must be a power of two; one set
// is the CAM.
func NewSetAssociative(design Design, sets, ways int) (*POLB, error) {
	if sets <= 0 || sets&(sets-1) != 0 {
		return nil, fmt.Errorf("polb: sets (%d) must be a positive power of two", sets)
	}
	if ways < 0 {
		return nil, fmt.Errorf("polb: negative ways %d", ways)
	}
	return &POLB{design: design, sets: sets, ways: ways, rows: make([][]entry, sets)}, nil
}

// Design returns the POLB's microarchitecture.
func (p *POLB) Design() Design { return p.design }

// Size returns the configured entry count.
func (p *POLB) Size() int { return p.sets * p.ways }

// Sets returns the set count (1 = fully associative).
func (p *POLB) Sets() int { return p.sets }

// tagOf derives the tag for an ObjectID under the configured design.
func (p *POLB) tagOf(o oid.OID) uint64 {
	if p.design == Pipelined {
		return uint64(o.Pool())
	}
	return o.PageTag()
}

func (p *POLB) row(tag uint64) int { return int(tag) & (p.sets - 1) }

// Lookup searches the ObjectID's set. On a hit it returns the entry's data
// — the pool's virtual base address (Pipelined) or the physical page base
// address (Parallel) — and promotes the entry to MRU within its set.
func (p *POLB) Lookup(o oid.OID) (data uint64, hit bool) {
	tag := p.tagOf(o)
	row := p.rows[p.row(tag)]
	for i := range row {
		if row[i].tag == tag {
			e := row[i]
			copy(row[1:i+1], row[:i])
			row[0] = e
			p.stats.Hits++
			return e.data, true
		}
	}
	p.stats.Misses++
	return 0, false
}

// Fill installs a translation after a POT walk, evicting the set's LRU
// entry if full. With zero ways this is a no-op.
func (p *POLB) Fill(o oid.OID, data uint64) {
	if p.ways == 0 {
		return
	}
	tag := p.tagOf(o)
	idx := p.row(tag)
	row := p.rows[idx]
	for i := range row {
		if row[i].tag == tag {
			// Already present (e.g. racing fill): refresh data, promote.
			row[i].data = data
			e := row[i]
			copy(row[1:i+1], row[:i])
			row[0] = e
			return
		}
	}
	if len(row) < p.ways {
		row = append(row, entry{})
	}
	copy(row[1:], row[:len(row)-1])
	row[0] = entry{tag: tag, data: data}
	p.rows[idx] = row
}

// Probe reports residency without perturbing LRU order or statistics.
func (p *POLB) Probe(o oid.OID) bool {
	tag := p.tagOf(o)
	for _, e := range p.rows[p.row(tag)] {
		if e.tag == tag {
			return true
		}
	}
	return false
}

// InvalidatePool drops every entry belonging to the pool (required when the
// OS unmaps a pool: stale translations must not survive, for either design).
func (p *POLB) InvalidatePool(pool oid.PoolID) {
	for i, row := range p.rows {
		out := row[:0]
		for _, e := range row {
			if p.poolOfTag(e.tag) != pool {
				out = append(out, e)
			}
		}
		p.rows[i] = out
	}
}

func (p *POLB) poolOfTag(tag uint64) oid.PoolID {
	if p.design == Pipelined {
		return oid.PoolID(tag)
	}
	// Parallel tags are OID>>12: pool occupies bits [52:20].
	return oid.PoolID(tag >> (oid.OffsetBits - oid.PageShift))
}

// Flush empties the POLB (context switch).
func (p *POLB) Flush() {
	for i := range p.rows {
		p.rows[i] = p.rows[i][:0]
	}
}

// Len returns the number of valid entries.
func (p *POLB) Len() int {
	n := 0
	for _, row := range p.rows {
		n += len(row)
	}
	return n
}

// Stats returns hit/miss counters.
func (p *POLB) Stats() Stats { return p.stats }

// ResetStats zeroes the counters (after warm-up).
func (p *POLB) ResetStats() { p.stats = Stats{} }

// TagBits returns the tag width in bits for the design, and DataBits the
// data width, used for the hardware-cost arithmetic in paper §5.1 (a
// 32-entry Pipelined POLB has a 32×32-bit tag array and 32×64-bit data
// array; Parallel has 52-bit tags and 52-bit data).
func (d Design) TagBits() int {
	if d == Pipelined {
		return oid.PoolBits
	}
	return 64 - oid.PageShift
}

// DataBits returns the per-entry payload width in bits.
func (d Design) DataBits() int {
	if d == Pipelined {
		return 64
	}
	return 64 - oid.PageShift
}
