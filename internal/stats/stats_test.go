package stats

import (
	"math"
	"strings"
	"testing"
	"testing/quick"
)

func TestGeoMean(t *testing.T) {
	nan := math.NaN()
	inf := math.Inf(1)
	cases := []struct {
		name string
		in   []float64
		want float64 // NaN means "require NaN"
	}{
		{"empty nil", nil, 0},
		{"empty slice", []float64{}, 0},
		{"single", []float64{3}, 3},
		{"pair", []float64{2, 8}, 4},
		{"ones", []float64{1, 1, 1}, 1},
		{"tiny values stay finite", []float64{1e-300, 1e-300}, 1e-300},
		{"zero annihilates", []float64{1, 0}, 0},
		{"all zeros", []float64{0, 0}, 0},
		{"negative is NaN", []float64{2, -1}, nan},
		{"negative after zero is NaN", []float64{0, -1}, nan},
		{"NaN is contagious", []float64{2, nan}, nan},
		{"inf dominates", []float64{2, inf}, inf},
		{"zero times inf is NaN", []float64{0, inf}, nan},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			g := GeoMean(tc.in)
			switch {
			case math.IsNaN(tc.want):
				if !math.IsNaN(g) {
					t.Errorf("GeoMean(%v) = %v, want NaN", tc.in, g)
				}
			case math.IsInf(tc.want, 1):
				if !math.IsInf(g, 1) {
					t.Errorf("GeoMean(%v) = %v, want +Inf", tc.in, g)
				}
			default:
				if math.Abs(g-tc.want) > 1e-12*math.Max(1, tc.want) {
					t.Errorf("GeoMean(%v) = %v, want %v", tc.in, g, tc.want)
				}
			}
		})
	}
}

func TestMean(t *testing.T) {
	if Mean(nil) != 0 {
		t.Error("empty mean is 0")
	}
	if m := Mean([]float64{1, 2, 3}); m != 2 {
		t.Errorf("Mean = %v", m)
	}
}

// Property: geomean lies between min and max.
func TestQuickGeoMeanBounds(t *testing.T) {
	f := func(raw []uint16) bool {
		if len(raw) == 0 {
			return true
		}
		xs := make([]float64, len(raw))
		lo, hi := math.Inf(1), math.Inf(-1)
		for i, r := range raw {
			xs[i] = float64(r%1000) + 1
			lo = math.Min(lo, xs[i])
			hi = math.Max(hi, xs[i])
		}
		g := GeoMean(xs)
		return g >= lo-1e-9 && g <= hi+1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestTableRender(t *testing.T) {
	tb := NewTable("My Table", "Bench", "Value")
	tb.AddRow("LL", "1.96")
	tb.AddRow("LongerName", "2")
	out := tb.Render()
	if !strings.Contains(out, "My Table") || !strings.Contains(out, "Bench") {
		t.Error("render must include title and headers")
	}
	if !strings.Contains(out, "LongerName") {
		t.Error("render must include rows")
	}
	if tb.Rows() != 2 {
		t.Error("Rows")
	}
	// Ragged rows don't panic.
	tb.AddRow("a", "b", "c")
	_ = tb.Render()
}

func TestBar(t *testing.T) {
	b := Bar(1.0, 2.0, 10)
	if !strings.HasPrefix(b, "#####.....") {
		t.Errorf("Bar = %q", b)
	}
	if !strings.Contains(b, "1.00") {
		t.Error("bar must include the value")
	}
	// Clamping.
	if over := Bar(5, 2, 10); !strings.HasPrefix(over, strings.Repeat("#", 10)) {
		t.Errorf("over-full bar = %q", over)
	}
	if under := Bar(-1, 2, 10); strings.Contains(under, "#") {
		t.Errorf("negative bar = %q", under)
	}
	if deg := Bar(1, 0, 10); deg == "" {
		t.Error("degenerate scale must still render")
	}
}

func TestFormatters(t *testing.T) {
	if F(1.234) != "1.23" {
		t.Error("F")
	}
	if Pct(0.325) != "32.5%" {
		t.Error("Pct")
	}
}
