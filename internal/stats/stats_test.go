package stats

import (
	"math"
	"strings"
	"testing"
	"testing/quick"
)

func TestGeoMean(t *testing.T) {
	if GeoMean(nil) != 0 {
		t.Error("empty geomean is 0")
	}
	if g := GeoMean([]float64{2, 8}); math.Abs(g-4) > 1e-12 {
		t.Errorf("GeoMean(2,8) = %v", g)
	}
	if g := GeoMean([]float64{3}); math.Abs(g-3) > 1e-12 {
		t.Errorf("GeoMean(3) = %v", g)
	}
	defer func() {
		if recover() == nil {
			t.Error("non-positive input must panic")
		}
	}()
	GeoMean([]float64{1, 0})
}

func TestMean(t *testing.T) {
	if Mean(nil) != 0 {
		t.Error("empty mean is 0")
	}
	if m := Mean([]float64{1, 2, 3}); m != 2 {
		t.Errorf("Mean = %v", m)
	}
}

// Property: geomean lies between min and max.
func TestQuickGeoMeanBounds(t *testing.T) {
	f := func(raw []uint16) bool {
		if len(raw) == 0 {
			return true
		}
		xs := make([]float64, len(raw))
		lo, hi := math.Inf(1), math.Inf(-1)
		for i, r := range raw {
			xs[i] = float64(r%1000) + 1
			lo = math.Min(lo, xs[i])
			hi = math.Max(hi, xs[i])
		}
		g := GeoMean(xs)
		return g >= lo-1e-9 && g <= hi+1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestTableRender(t *testing.T) {
	tb := NewTable("My Table", "Bench", "Value")
	tb.AddRow("LL", "1.96")
	tb.AddRow("LongerName", "2")
	out := tb.Render()
	if !strings.Contains(out, "My Table") || !strings.Contains(out, "Bench") {
		t.Error("render must include title and headers")
	}
	if !strings.Contains(out, "LongerName") {
		t.Error("render must include rows")
	}
	if tb.Rows() != 2 {
		t.Error("Rows")
	}
	// Ragged rows don't panic.
	tb.AddRow("a", "b", "c")
	_ = tb.Render()
}

func TestBar(t *testing.T) {
	b := Bar(1.0, 2.0, 10)
	if !strings.HasPrefix(b, "#####.....") {
		t.Errorf("Bar = %q", b)
	}
	if !strings.Contains(b, "1.00") {
		t.Error("bar must include the value")
	}
	// Clamping.
	if over := Bar(5, 2, 10); !strings.HasPrefix(over, strings.Repeat("#", 10)) {
		t.Errorf("over-full bar = %q", over)
	}
	if under := Bar(-1, 2, 10); strings.Contains(under, "#") {
		t.Errorf("negative bar = %q", under)
	}
	if deg := Bar(1, 0, 10); deg == "" {
		t.Error("degenerate scale must still render")
	}
}

func TestFormatters(t *testing.T) {
	if F(1.234) != "1.23" {
		t.Error("F")
	}
	if Pct(0.325) != "32.5%" {
		t.Error("Pct")
	}
}
