// Package stats provides the small numeric and formatting helpers the
// experiment harness uses: geometric means (the paper reports GeoMean rows)
// and plain-text tables and bar charts for reproducing the paper's tables
// and figures on a terminal.
package stats

import (
	"fmt"
	"math"
	"strings"
)

// GeoMean returns the geometric mean of xs.
//
// Edge cases are defined rather than fatal, because the inputs are measured
// speedup ratios and an aggregation helper must not take down a whole
// experiment grid:
//
//   - empty input returns 0 (no ratios, no mean — matches Mean);
//   - any zero returns 0 (the mathematical limit: one zero factor
//     annihilates the product);
//   - any negative value or NaN returns NaN (a negative ratio has no real
//     geometric mean; NaN is contagious, as in every float aggregate), so
//     a broken speedup computation surfaces as NaN in the rendered table
//     instead of a panic.
//
// +Inf inputs follow IEEE arithmetic: the mean is +Inf unless a zero is
// also present, in which case 0·∞ makes the result NaN.
func GeoMean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var (
		sum     float64
		hasZero bool
	)
	for _, x := range xs {
		if x < 0 || math.IsNaN(x) {
			return math.NaN()
		}
		if x == 0 {
			// Keep scanning: a later negative/NaN still dominates.
			hasZero = true
			continue
		}
		sum += math.Log(x)
	}
	if hasZero {
		if math.IsInf(sum, 1) {
			return math.NaN() // 0 · ∞
		}
		return 0
	}
	return math.Exp(sum / float64(len(xs)))
}

// Mean returns the arithmetic mean (0 for empty input).
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var sum float64
	for _, x := range xs {
		sum += x
	}
	return sum / float64(len(xs))
}

// Table accumulates rows and renders them with aligned columns.
type Table struct {
	Title   string
	Headers []string
	rows    [][]string
}

// NewTable creates a table with the given title and column headers.
func NewTable(title string, headers ...string) *Table {
	return &Table{Title: title, Headers: headers}
}

// AddRow appends a row; cells beyond the header count are kept.
func (t *Table) AddRow(cells ...string) { t.rows = append(t.rows, cells) }

// Rows returns the number of data rows.
func (t *Table) Rows() int { return len(t.rows) }

// Render formats the table as text.
func (t *Table) Render() string {
	var b strings.Builder
	if t.Title != "" {
		fmt.Fprintf(&b, "%s\n", t.Title)
	}
	widths := make([]int, 0, len(t.Headers))
	for _, h := range t.Headers {
		widths = append(widths, len(h))
	}
	for _, row := range t.rows {
		for i, c := range row {
			for i >= len(widths) {
				widths = append(widths, 0)
			}
			if len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	line := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], c)
		}
		b.WriteString("\n")
	}
	line(t.Headers)
	total := 0
	for _, w := range widths {
		total += w + 2
	}
	b.WriteString(strings.Repeat("-", total-2) + "\n")
	for _, row := range t.rows {
		line(row)
	}
	return b.String()
}

// Bar renders an ASCII bar for a value on a scale where `full` maps to
// width characters, annotated with the numeric value. Used to reproduce the
// paper's figures as terminal charts.
func Bar(value, full float64, width int) string {
	if full <= 0 || width <= 0 {
		return fmt.Sprintf("%6.2f", value)
	}
	n := int(value / full * float64(width))
	if n > width {
		n = width
	}
	if n < 0 {
		n = 0
	}
	return fmt.Sprintf("%s%s %5.2f", strings.Repeat("#", n), strings.Repeat(".", width-n), value)
}

// F formats a float with 2 decimals (table cells).
func F(v float64) string { return fmt.Sprintf("%.2f", v) }

// Pct formats a ratio as a percentage with one decimal.
func Pct(v float64) string { return fmt.Sprintf("%.1f%%", 100*v) }
