package workloads

import (
	"fmt"

	"potgo/internal/pds"
)

// Spec describes one microbenchmark of paper Table 5.
type Spec struct {
	// Name and Abbr label the benchmark ("Linked-list", "LL").
	Name, Abbr string
	// DefaultOps is the paper's operation count.
	DefaultOps int
	// DefaultKeyRange is the key universe the random integers are drawn
	// from (the paper does not pin these; chosen so that structures see
	// the mix of hits and misses the descriptions imply).
	DefaultKeyRange uint64
	// Run executes ops operations and returns a functional checksum that
	// must agree across BASE/OPT/pattern configurations with the same
	// seed.
	Run func(env *Env, ops int, keyRange uint64) (uint64, error)
}

// Specs lists the paper's six microbenchmarks in its Table 5 order.
var Specs = []Spec{
	{"Linked-list", "LL", 700, 1000, RunLL},
	{"Binary Search Tree", "BST", 5000, 10000, RunBST},
	{"String Position Swap", "SPS", 10000, 0, RunSPS},
	{"Red-black Tree", "RBT", 3000, 6000, RunRBT},
	{"B-Tree", "BT", 5000, 10000, RunBT},
	{"B+ Tree", "B+T", 5000, 10000, RunBPlus},
}

// ByAbbr finds a spec by its abbreviation.
func ByAbbr(abbr string) (Spec, bool) {
	for _, s := range Specs {
		if s.Abbr == abbr {
			return s, true
		}
	}
	return Spec{}, false
}

// RunLL is the LL workload: search random integers in the list; remove on a
// hit, insert at the head on a miss.
func RunLL(env *Env, ops int, keyRange uint64) (uint64, error) {
	cell, err := env.RootCell(0)
	if err != nil {
		return 0, err
	}
	l := pds.NewList(pds.NewCell(env.H, cell))
	for i := 0; i < ops; i++ {
		key, _ := env.NextKey(keyRange)
		if err := env.Begin(); err != nil {
			return 0, err
		}
		removed, err := l.Remove(env, key)
		if err != nil {
			return 0, err
		}
		if !removed {
			if err := l.Insert(env, key); err != nil {
				return 0, err
			}
		}
		if err := env.End(); err != nil {
			return 0, err
		}
	}
	keys, err := l.Keys(env)
	if err != nil {
		return 0, err
	}
	return checksum(keys), nil
}

// RunBST is the BST workload: search; remove on a hit (replacing a
// two-child node with the max of its left subtree), insert on a miss.
func RunBST(env *Env, ops int, keyRange uint64) (uint64, error) {
	cell, err := env.RootCell(0)
	if err != nil {
		return 0, err
	}
	t := pds.NewBST(pds.NewCell(env.H, cell))
	for i := 0; i < ops; i++ {
		key, _ := env.NextKey(keyRange)
		if err := env.Begin(); err != nil {
			return 0, err
		}
		removed, err := t.Remove(env, key)
		if err != nil {
			return 0, err
		}
		if !removed {
			if err := t.Insert(env, key); err != nil {
				return 0, err
			}
		}
		if err := env.End(); err != nil {
			return 0, err
		}
	}
	keys, err := t.InOrder(env)
	if err != nil {
		return 0, err
	}
	return checksum(keys), nil
}

// RunRBT is the RBT workload: search; remove and rebalance on a hit, insert
// and rebalance on a miss.
func RunRBT(env *Env, ops int, keyRange uint64) (uint64, error) {
	cell, err := env.RootCell(0)
	if err != nil {
		return 0, err
	}
	t := pds.NewRBT(pds.NewCell(env.H, cell))
	for i := 0; i < ops; i++ {
		key, _ := env.NextKey(keyRange)
		if err := env.Begin(); err != nil {
			return 0, err
		}
		removed, err := t.Remove(env, key)
		if err != nil {
			return 0, err
		}
		if !removed {
			if err := t.Insert(env, key); err != nil {
				return 0, err
			}
		}
		if err := env.End(); err != nil {
			return 0, err
		}
	}
	if _, err := t.CheckInvariants(env); err != nil {
		return 0, err
	}
	keys, err := t.InOrder(env)
	if err != nil {
		return 0, err
	}
	return checksum(keys), nil
}

// RunBT is the BT workload: search; insert (with rebalance via splits) when
// missing. Table 5 lists no deletion for BT.
func RunBT(env *Env, ops int, keyRange uint64) (uint64, error) {
	cell, err := env.RootCell(0)
	if err != nil {
		return 0, err
	}
	t := pds.NewBTree(pds.NewCell(env.H, cell))
	for i := 0; i < ops; i++ {
		key, _ := env.NextKey(keyRange)
		if err := env.Begin(); err != nil {
			return 0, err
		}
		found, err := t.Find(env, key)
		if err != nil {
			return 0, err
		}
		if !found {
			if err := t.Insert(env, key); err != nil {
				return 0, err
			}
		}
		if err := env.End(); err != nil {
			return 0, err
		}
	}
	n, err := t.CheckInvariants(env)
	if err != nil {
		return 0, err
	}
	return uint64(n), nil
}

// RunBPlus is the B+T workload: search; remove on a hit, insert on a miss,
// rebalancing in both directions.
func RunBPlus(env *Env, ops int, keyRange uint64) (uint64, error) {
	cell, err := env.RootCell(0)
	if err != nil {
		return 0, err
	}
	t := pds.NewBPlus(pds.NewCell(env.H, cell))
	for i := 0; i < ops; i++ {
		key, _ := env.NextKey(keyRange)
		if err := env.Begin(); err != nil {
			return 0, err
		}
		removed, err := t.Remove(env, key)
		if err != nil {
			return 0, err
		}
		if !removed {
			if err := t.Insert(env, key, key); err != nil {
				return 0, err
			}
		}
		if err := env.End(); err != nil {
			return 0, err
		}
	}
	kvs, err := t.Scan(env, 0, 1<<30)
	if err != nil {
		return 0, err
	}
	var sum uint64
	for _, kv := range kvs {
		sum = sum*31 + kv.Key
	}
	return sum ^ uint64(len(kvs)), nil
}

// SPSStrings is the paper's array size: 1024 strings of 32 bytes = 32 KB.
const SPSStrings = 1024

// RunSPS is the SPS workload: randomly swap pairs of strings in the string
// array. keyRange is unused (the array size is fixed).
func RunSPS(env *Env, ops int, _ uint64) (uint64, error) {
	cell, err := env.RootCell(0)
	if err != nil {
		return 0, err
	}
	sa := pds.NewStringArray(pds.NewCell(env.H, cell), SPSStrings, pds.StringBytes)
	if err := sa.Init(env); err != nil {
		return 0, err
	}
	for i := 0; i < ops; i++ {
		a, _ := env.NextInt(SPSStrings)
		b, _ := env.NextInt(SPSStrings)
		if err := env.Begin(); err != nil {
			return 0, err
		}
		if err := sa.Swap(env, a, b); err != nil {
			return 0, err
		}
		if err := env.End(); err != nil {
			return 0, err
		}
	}
	// Checksum: first byte of each string in order.
	var sum uint64
	for i := 0; i < SPSStrings; i++ {
		s, err := sa.Get(env, i)
		if err != nil {
			return 0, err
		}
		sum = sum*131 + uint64(s[0])
	}
	return sum, nil
}

func checksum(keys []uint64) uint64 {
	var sum uint64
	for _, k := range keys {
		sum = sum*31 + k + 1
	}
	return sum ^ uint64(len(keys))
}

// Validate sanity-checks a spec table entry (used by tests and the
// harness).
func Validate(s Spec) error {
	if s.Name == "" || s.Abbr == "" || s.Run == nil {
		return fmt.Errorf("workloads: malformed spec %+v", s)
	}
	if s.DefaultOps <= 0 {
		return fmt.Errorf("workloads: %s has no default op count", s.Abbr)
	}
	return nil
}
