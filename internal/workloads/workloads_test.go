package workloads

import (
	"testing"

	"potgo/internal/emit"
	"potgo/internal/pmem"
	"potgo/internal/trace"
	"potgo/internal/vm"
)

// runOnce executes a workload functionally (instructions discarded unless a
// counting sink is wanted) and returns its checksum and instruction count.
func runOnce(t *testing.T, spec Spec, mode emit.Mode, cfg Config, ops int) (uint64, uint64) {
	t.Helper()
	as := vm.NewAddressSpace(cfg.Seed + 1000)
	em := emit.New(trace.Discard{}, mode)
	var soft *emit.SoftTranslator
	if mode == emit.Base {
		var err error
		soft, err = emit.NewSoftTranslator(em, as, 1024)
		if err != nil {
			t.Fatal(err)
		}
	}
	h, err := pmem.NewHeap(as, pmem.NewStore(), em, soft)
	if err != nil {
		t.Fatal(err)
	}
	env, err := NewEnv(h, cfg)
	if err != nil {
		t.Fatal(err)
	}
	kr := spec.DefaultKeyRange
	if kr == 0 {
		kr = 1
	}
	sum, err := spec.Run(env, ops, kr)
	if err != nil {
		t.Fatalf("%s/%s/%v: %v", spec.Abbr, cfg.Pattern, mode, err)
	}
	return sum, em.Count()
}

func TestSpecsTable(t *testing.T) {
	if len(Specs) != 6 {
		t.Fatalf("paper Table 5 has 6 microbenchmarks, got %d", len(Specs))
	}
	for _, s := range Specs {
		if err := Validate(s); err != nil {
			t.Error(err)
		}
	}
	if _, ok := ByAbbr("LL"); !ok {
		t.Error("ByAbbr must find LL")
	}
	if _, ok := ByAbbr("XX"); ok {
		t.Error("ByAbbr must miss XX")
	}
	// Paper Table 5 op counts.
	want := map[string]int{"LL": 700, "BST": 5000, "SPS": 10000, "RBT": 3000, "BT": 5000, "B+T": 5000}
	for abbr, ops := range want {
		s, _ := ByAbbr(abbr)
		if s.DefaultOps != ops {
			t.Errorf("%s default ops = %d, want %d", abbr, s.DefaultOps, ops)
		}
	}
}

func TestValidateRejectsBadSpecs(t *testing.T) {
	if err := Validate(Spec{}); err == nil {
		t.Error("empty spec must fail")
	}
	if err := Validate(Spec{Name: "x", Abbr: "x", Run: RunLL}); err == nil {
		t.Error("spec without ops must fail")
	}
}

func TestPatternString(t *testing.T) {
	if All.String() != "ALL" || Each.String() != "EACH" || Random.String() != "RANDOM" {
		t.Error("pattern names")
	}
	if Pattern(9).String() == "" {
		t.Error("unknown pattern must render")
	}
}

// Every workload must run to completion under every pattern (small op
// counts; OPT mode for speed; failure-safety on).
func TestAllWorkloadsAllPatterns(t *testing.T) {
	ops := map[string]int{"LL": 60, "BST": 150, "SPS": 40, "RBT": 150, "BT": 150, "B+T": 150}
	for _, spec := range Specs {
		for _, pat := range []Pattern{All, Each, Random} {
			if spec.Abbr == "SPS" && pat == Each {
				// EACH puts each of the 1024 strings in its own
				// pool; covered by the smaller dedicated test
				// below.
				continue
			}
			cfg := Config{Pattern: pat, Tx: true, Seed: 42}
			sum, insns := runOnce(t, spec, emit.Opt, cfg, ops[spec.Abbr])
			if insns == 0 {
				t.Errorf("%s/%v emitted nothing", spec.Abbr, pat)
			}
			_ = sum
		}
	}
}

func TestSPSEachPattern(t *testing.T) {
	spec, _ := ByAbbr("SPS")
	cfg := Config{Pattern: Each, Tx: true, Seed: 1}
	sum, _ := runOnce(t, spec, emit.Opt, cfg, 10)
	_ = sum
}

// BASE and OPT runs of the same seed must produce identical functional
// results (the same structure contents), differing only in instructions.
func TestBaseOptFunctionalEquivalence(t *testing.T) {
	ops := map[string]int{"LL": 50, "BST": 120, "SPS": 30, "RBT": 120, "BT": 120, "B+T": 120}
	for _, spec := range Specs {
		cfg := Config{Pattern: Random, Tx: true, Seed: 7}
		sumB, insnsB := runOnce(t, spec, emit.Base, cfg, ops[spec.Abbr])
		sumO, insnsO := runOnce(t, spec, emit.Opt, cfg, ops[spec.Abbr])
		if sumB != sumO {
			t.Errorf("%s: BASE checksum %#x != OPT %#x", spec.Abbr, sumB, sumO)
		}
		if insnsO >= insnsB {
			t.Errorf("%s: OPT (%d insns) must be shorter than BASE (%d)", spec.Abbr, insnsO, insnsB)
		}
	}
}

// The instruction-count reduction from hardware translation (paper: 43.9%
// average) must be substantial on translation-heavy patterns.
func TestInstructionReductionIsSubstantial(t *testing.T) {
	spec, _ := ByAbbr("LL")
	cfg := Config{Pattern: Random, Tx: true, Seed: 9}
	_, insnsB := runOnce(t, spec, emit.Base, cfg, 80)
	_, insnsO := runOnce(t, spec, emit.Opt, cfg, 80)
	reduction := 1 - float64(insnsO)/float64(insnsB)
	if reduction < 0.25 {
		t.Errorf("LL/RANDOM instruction reduction = %.1f%%, expected substantial", 100*reduction)
	}
}

// TX and NTX runs must produce the same functional state; TX must emit
// more instructions (logging, CLWBs, fences).
func TestTxVsNtx(t *testing.T) {
	spec, _ := ByAbbr("BST")
	base := Config{Pattern: All, Seed: 5}
	txCfg, ntxCfg := base, base
	txCfg.Tx = true
	sumTx, insnsTx := runOnce(t, spec, emit.Opt, txCfg, 100)
	sumNtx, insnsNtx := runOnce(t, spec, emit.Opt, ntxCfg, 100)
	if sumTx != sumNtx {
		t.Errorf("TX checksum %#x != NTX %#x", sumTx, sumNtx)
	}
	if insnsTx <= insnsNtx {
		t.Errorf("TX (%d) must cost more instructions than NTX (%d)", insnsTx, insnsNtx)
	}
}

// Patterns affect placement, not results.
func TestPatternsFunctionallyEquivalent(t *testing.T) {
	spec, _ := ByAbbr("B+T")
	var sums []uint64
	for _, pat := range []Pattern{All, Each, Random} {
		cfg := Config{Pattern: pat, Tx: true, Seed: 11}
		sum, _ := runOnce(t, spec, emit.Opt, cfg, 100)
		sums = append(sums, sum)
	}
	if sums[0] != sums[1] || sums[1] != sums[2] {
		t.Errorf("checksums diverge across patterns: %v", sums)
	}
}

// EACH really creates one pool per structure.
func TestEachCreatesPools(t *testing.T) {
	as := vm.NewAddressSpace(3)
	em := emit.New(trace.Discard{}, emit.Opt)
	h, err := pmem.NewHeap(as, pmem.NewStore(), em, nil)
	if err != nil {
		t.Fatal(err)
	}
	env, err := NewEnv(h, Config{Pattern: Each, Tx: true, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	spec, _ := ByAbbr("LL")
	if _, err := spec.Run(env, 40, spec.DefaultKeyRange); err != nil {
		t.Fatal(err)
	}
	if env.PoolsCreated() < 20 {
		t.Errorf("EACH created only %d pools for 40 ops", env.PoolsCreated())
	}
}

// RANDOM uses exactly 32 + 1 pools.
func TestRandomPoolCount(t *testing.T) {
	as := vm.NewAddressSpace(4)
	em := emit.New(trace.Discard{}, emit.Opt)
	h, _ := pmem.NewHeap(as, pmem.NewStore(), em, nil)
	env, err := NewEnv(h, Config{Pattern: Random, Tx: true, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	spec, _ := ByAbbr("BST")
	if _, err := spec.Run(env, 100, spec.DefaultKeyRange); err != nil {
		t.Fatal(err)
	}
	if env.PoolsCreated() != RandomPools {
		t.Errorf("RANDOM pools = %d, want %d (master is pool 0 of the 32)", env.PoolsCreated(), RandomPools)
	}
}

// The same seed reproduces the same run bit-for-bit (determinism).
func TestDeterminism(t *testing.T) {
	spec, _ := ByAbbr("RBT")
	cfg := Config{Pattern: Random, Tx: true, Seed: 77}
	s1, n1 := runOnce(t, spec, emit.Opt, cfg, 120)
	s2, n2 := runOnce(t, spec, emit.Opt, cfg, 120)
	if s1 != s2 || n1 != n2 {
		t.Errorf("non-deterministic: (%#x,%d) vs (%#x,%d)", s1, n1, s2, n2)
	}
}
