// Package workloads implements the paper's six microbenchmarks (Table 5)
// parameterized by the pool usage patterns of Table 6 (ALL / EACH / RANDOM)
// and the failure-safety configurations of Table 7 (with transactions, or
// the *_NTX variants without).
package workloads

import (
	"fmt"
	"math/rand"

	"potgo/internal/isa"
	"potgo/internal/oid"
	"potgo/internal/pmem"
)

// Pattern is a pool usage pattern (paper Table 6).
type Pattern int

const (
	// All places every persistent object in one pool.
	All Pattern = iota
	// Each places every structure (node) created by the program in its
	// own freshly created pool.
	Each
	// Random fixes 32 pools and places each new structure in the pool
	// indexed by its key modulo 32.
	Random
)

// RandomPools is the paper's fixed pool count for the RANDOM pattern.
const RandomPools = 32

func (p Pattern) String() string {
	switch p {
	case All:
		return "ALL"
	case Each:
		return "EACH"
	case Random:
		return "RANDOM"
	default:
		return fmt.Sprintf("Pattern(%d)", int(p))
	}
}

// Config selects the workload environment.
type Config struct {
	// Pattern is the pool usage pattern.
	Pattern Pattern
	// Tx enables failure-safety and durability (Table 7: BASE/OPT when
	// true, BASE_NTX/OPT_NTX when false).
	Tx bool
	// Seed drives the workload's key stream (identical across BASE/OPT
	// runs so the functional behaviour is bit-identical).
	Seed int64
}

// Pool sizing for the three patterns.
const (
	masterPoolBytes = 48 << 20
	masterLogBytes  = 256 * 1024
	randomPoolBytes = 4 << 20
	randomLogBytes  = 4096
	eachPoolBytes   = 8192 // header + one data page; no log
)

// Env is the runtime environment of one workload run. It implements
// pds.Ctx: pool placement per the pattern, and undo-log snapshotting per
// the failure-safety configuration.
type Env struct {
	H      *pmem.Heap
	Master *pmem.Pool
	cfg    Config
	rng    *rand.Rand

	randomPools []*pmem.Pool
	eachCount   int
	touched     map[oid.OID]bool
}

// NewEnv creates the pools the pattern needs and the master pool that hosts
// the structure anchor and the undo log.
func NewEnv(h *pmem.Heap, cfg Config) (*Env, error) {
	master, err := h.CreateSized("master", masterPoolBytes, masterLogBytes)
	if err != nil {
		return nil, err
	}
	env := &Env{
		H:      h,
		Master: master,
		cfg:    cfg,
		rng:    rand.New(rand.NewSource(cfg.Seed)),
	}
	if cfg.Pattern == Random {
		// The master pool is pool 0 of the 32, so the RANDOM working
		// set is exactly RandomPools pools (the paper's 32-entry POLB
		// then only misses during warm-up).
		env.randomPools = append(env.randomPools, master)
		for i := 1; i < RandomPools; i++ {
			p, err := h.CreateSized(fmt.Sprintf("rand-%02d", i), randomPoolBytes, randomLogBytes)
			if err != nil {
				return nil, err
			}
			env.randomPools = append(env.randomPools, p)
		}
	}
	return env, nil
}

// Config returns the environment configuration.
func (env *Env) Config() Config { return env.cfg }

// Heap implements pds.Ctx.
func (env *Env) Heap() *pmem.Heap { return env.H }

// Alloc implements pds.Ctx: it places the new object per the usage pattern
// and logs the allocation when failure-safety is on.
func (env *Env) Alloc(key uint64, size uint32) (oid.OID, error) {
	var pool *pmem.Pool
	switch env.cfg.Pattern {
	case All:
		pool = env.Master
	case Random:
		// pool = key mod 32 — the modulo really executes (Div).
		r := env.H.Emit.Temp()
		env.H.Emit.Div(r, isa.RZ, isa.RZ)
		pool = env.randomPools[key%RandomPools]
	case Each:
		// A brand-new pool sized to the structure it will hold.
		name := fmt.Sprintf("each-%06d", env.eachCount)
		env.eachCount++
		bytes := uint64(eachPoolBytes)
		if need := uint64(4096) + uint64(size) + 64; need > bytes {
			bytes = (need + 4095) &^ 4095
		}
		p, err := env.H.CreateSized(name, bytes, 0)
		if err != nil {
			return oid.Null, err
		}
		pool = p
	}
	if env.cfg.Tx && env.H.InTx() {
		return env.H.TxAlloc(pool, size)
	}
	return env.H.Alloc(pool, size)
}

// Free implements pds.Ctx.
func (env *Env) Free(o oid.OID) error {
	if env.cfg.Tx && env.H.InTx() {
		return env.H.TxFree(o)
	}
	return env.H.Free(o)
}

// Touch implements pds.Ctx: snapshot once per object per transaction.
func (env *Env) Touch(o oid.OID, size uint32) error {
	if !env.cfg.Tx || !env.H.InTx() {
		return nil
	}
	if env.touched[o] {
		return nil
	}
	env.touched[o] = true
	return env.H.TxAddRange(o, size)
}

// Begin opens a failure-safe operation (a transaction on the master pool
// when Tx is configured; nothing otherwise).
func (env *Env) Begin() error {
	if !env.cfg.Tx {
		return nil
	}
	env.touched = make(map[oid.OID]bool, 16)
	return env.H.TxBegin(env.Master)
}

// End commits the operation.
func (env *Env) End() error {
	if !env.cfg.Tx {
		return nil
	}
	return env.H.TxEnd()
}

// NextKey draws the next random key in [0, keyRange), emitting the RNG's
// instruction cost, and returns it with the register that holds it.
func (env *Env) NextKey(keyRange uint64) (uint64, isa.Reg) {
	k := uint64(env.rng.Int63n(int64(keyRange)))
	e := env.H.Emit
	r := e.Temp()
	e.Mul(r, r, isa.RZ) // LCG multiply
	r2 := e.Compute(5, r)
	return k, r2
}

// NextInt draws a bounded random integer with the same emitted cost.
func (env *Env) NextInt(n int) (int, isa.Reg) {
	k, r := env.NextKey(uint64(n))
	return int(k), r
}

// RootCell returns the 8-byte anchor slot at the given index within the
// master pool's root object (creating a 64-byte root on first use).
func (env *Env) RootCell(index uint32) (oid.OID, error) {
	root, err := env.H.Root(env.Master, 64)
	if err != nil {
		return oid.Null, err
	}
	return root.FieldAt(index * 8), nil
}

// PoolsCreated reports how many pools the run created (diagnostics; the
// EACH pattern creates one per structure).
func (env *Env) PoolsCreated() int {
	n := 1 + env.eachCount
	if env.cfg.Pattern == Random {
		n += RandomPools - 1
	}
	return n
}
