package pmem

import (
	"fmt"
	"testing"

	"potgo/internal/isa"
	"potgo/internal/nvmsim"
	"potgo/internal/oid"
	"potgo/internal/vm"
)

// Slab-focused crash coverage: the tx sweep in crashpoint_test.go exercises
// the undo log over a fixed pair of objects, but the size-class slab
// allocator has its own persistent metadata (span headers, occupancy
// bitmaps, class chain words) with its own crash windows — above all the
// span-carve ("grow") path, which publishes a fresh span header and links
// it into the class chain, and the free path, which must not leak a slot to
// the free stack before its transaction commits. slabScript drives exactly
// those paths — first-touch carves of three different classes inside one
// transaction, transactional frees, and a post-free reuse allocation — and
// TestCrashAtEveryEventSlab cuts it before every persistent event.

const (
	slabCounterOff = 0  // committed-transaction counter
	slabSlotsOff   = 8  // four OID slots
	slabRootSize   = 40 // counter + 4 slots
)

// slabWorld builds a pool whose root is a durable slot table, returning the
// baseline live-slot count so outcome checks can reason in slab terms.
func slabWorld(t *testing.T, seed int64) (*vm.AddressSpace, *Store, *Heap, *Pool, oid.OID, int) {
	t.Helper()
	as := vm.NewAddressSpace(seed)
	store := NewStore()
	h := freshHeap(t, as, store)
	p, err := h.CreateSized("slab", 1<<20, 128*1024)
	if err != nil {
		t.Fatal(err)
	}
	root, err := h.Root(p, slabRootSize)
	if err != nil {
		t.Fatal(err)
	}
	if err := h.SyncPool(p); err != nil {
		t.Fatal(err)
	}
	_, _, live := h.SlabStats(p)
	return as, store, h, p, root, live
}

// slabScript runs three transactions against the slot table:
//
//	tx1 (counter 1): first-touch allocations in classes 16, 128 and 1024 —
//	  each carves a fresh span inside the transaction — with canaries.
//	tx2 (counter 2): transactional frees of the 128- and 1024-class blocks.
//	tx3 (counter 3): a reuse allocation in class 128 (pops the freed slot).
//
// Canaries are derived from the committed counter so the verifier can tell
// exactly which prefix of transactions survived a crash.
func slabScript(h *Heap, p *Pool, root oid.OID) error {
	rootRef, err := h.Deref(root, isa.RZ)
	if err != nil {
		return err
	}
	readSlot := func(i int) oid.OID {
		w, err := rootRef.Load64(uint32(slabSlotsOff + 8*i))
		if err != nil {
			panic(err)
		}
		return oid.OID(w.V)
	}
	allocInto := func(slot int, size uint32) error {
		o, err := h.TxAlloc(p, size)
		if err != nil {
			return err
		}
		blk, err := h.Deref(o, isa.RZ)
		if err != nil {
			return err
		}
		if err := blk.Store64(0, slabCanary(slot), isa.RZ); err != nil {
			return err
		}
		return rootRef.Store64(uint32(slabSlotsOff+8*slot), uint64(o), isa.RZ)
	}

	// tx1: three first-touch classes, three span carves under one log.
	if err := h.TxBegin(p); err != nil {
		return err
	}
	if err := h.TxAddRange(root, slabRootSize); err != nil {
		return err
	}
	if err := allocInto(0, 16); err != nil {
		return err
	}
	if err := allocInto(1, 100); err != nil { // class 128
		return err
	}
	if err := allocInto(2, 600); err != nil { // class 1024
		return err
	}
	if err := rootRef.Store64(slabCounterOff, 1, isa.RZ); err != nil {
		return err
	}
	if err := h.TxEnd(); err != nil {
		return err
	}

	// tx2: free the two larger blocks.
	if err := h.TxBegin(p); err != nil {
		return err
	}
	if err := h.TxAddRange(root, slabRootSize); err != nil {
		return err
	}
	for _, slot := range []int{1, 2} {
		if err := h.TxFree(readSlot(slot)); err != nil {
			return err
		}
		if err := rootRef.Store64(uint32(slabSlotsOff+8*slot), 0, isa.RZ); err != nil {
			return err
		}
	}
	if err := rootRef.Store64(slabCounterOff, 2, isa.RZ); err != nil {
		return err
	}
	if err := h.TxEnd(); err != nil {
		return err
	}

	// tx3: reuse the freed 128-class slot.
	if err := h.TxBegin(p); err != nil {
		return err
	}
	if err := h.TxAddRange(root, slabRootSize); err != nil {
		return err
	}
	if err := allocInto(3, 100); err != nil {
		return err
	}
	if err := rootRef.Store64(slabCounterOff, 3, isa.RZ); err != nil {
		return err
	}
	return h.TxEnd()
}

func slabCanary(slot int) uint64 { return 0xca11a6<<16 | uint64(slot+1) }

// slabLiveDelta is how many live slab slots each committed prefix adds over
// the baseline: +3 after tx1, +1 after tx2 (two frees), +2 after tx3.
var slabLiveDelta = [4]int{0, 3, 1, 2}

// checkSlabOutcome asserts the recovered pool is exactly the state after
// some committed prefix of slabScript: counter, slot table, canaries and
// the slab's live-slot census must all agree.
func checkSlabOutcome(label string, h *Heap, p *Pool, root oid.OID, baseLive int) error {
	rootRef, err := h.Deref(root, isa.RZ)
	if err != nil {
		return err
	}
	w, err := rootRef.Load64(slabCounterOff)
	if err != nil {
		return err
	}
	counter := w.V
	if counter > 3 {
		return fmt.Errorf("%s: counter %d out of range", label, counter)
	}
	// Which slots hold live canaried blocks after each committed prefix.
	wantLive := map[uint64][]int{0: {}, 1: {0, 1, 2}, 2: {0}, 3: {0, 3}}[counter]
	occupied := map[int]bool{}
	for _, s := range wantLive {
		occupied[s] = true
	}
	for slot := 0; slot < 4; slot++ {
		sw, err := rootRef.Load64(uint32(slabSlotsOff + 8*slot))
		if err != nil {
			return err
		}
		if !occupied[slot] {
			if sw.V != 0 {
				return fmt.Errorf("%s: counter %d but slot %d = %#x, want empty", label, counter, slot, sw.V)
			}
			continue
		}
		if sw.V == 0 {
			return fmt.Errorf("%s: counter %d but slot %d empty", label, counter, slot)
		}
		blk, err := h.Deref(oid.OID(sw.V), isa.RZ)
		if err != nil {
			return fmt.Errorf("%s: slot %d: %w", label, slot, err)
		}
		cw, err := blk.Load64(0)
		if err != nil {
			return err
		}
		if cw.V != slabCanary(slot) {
			return fmt.Errorf("%s: slot %d canary %#x, want %#x", label, slot, cw.V, slabCanary(slot))
		}
	}
	// The slab census must match the committed prefix exactly: a leaked
	// uncommitted allocation or a lost committed free shows up here even
	// when every canary looks right.
	_, _, live := h.SlabStats(p)
	if want := baseLive + slabLiveDelta[counter]; live != want {
		return fmt.Errorf("%s: counter %d: %d live slab slots, want %d", label, counter, live, want)
	}
	return nil
}

// TestCrashAtEveryEventSlab arms the persistence domain to crash before
// every persistent store / CLWB / SFENCE slabScript produces, under both
// the drop-all and torn-line adversaries, and requires recovery to land on
// an exact committed prefix — span carves, bitmap flips and class-chain
// links included.
func TestCrashAtEveryEventSlab(t *testing.T) {
	// Dry run sizes the event span.
	_, _, h, p, root, baseLive := slabWorld(t, 91)
	e0 := h.NV.Events()
	if err := slabScript(h, p, root); err != nil {
		t.Fatal(err)
	}
	e1 := h.NV.Events()
	if e1-e0 < 30 {
		t.Fatalf("suspiciously short event span %d..%d", e0, e1)
	}

	for _, kind := range []nvmsim.Kind{nvmsim.DropAll, nvmsim.Torn} {
		for e := e0; e < e1; e++ {
			label := fmt.Sprintf("%v@%d", kind, e)
			as, store, h, p, root, _ := slabWorld(t, 91)
			pol := nvmsim.DropAllPolicy()
			if kind == nvmsim.Torn {
				pol = nvmsim.TornPolicy(e)
			}
			crashed, err := runArmed(h, e, func() error { return slabScript(h, p, root) })
			if err != nil {
				t.Fatalf("%s: %v", label, err)
			}
			if !crashed {
				t.Fatalf("%s: armed event never reached (span drifted?)", label)
			}
			rep, err := h.Crash(pol)
			if err != nil {
				t.Fatal(err)
			}

			h2 := freshHeap(t, as, store)
			p2, err := h2.Open("slab")
			if err != nil {
				t.Fatal(err)
			}
			if err := h2.Recover(p2); err != nil {
				t.Fatalf("%s (kept %s): recover: %v", label, rep.KeptString(), err)
			}
			if err := h2.CheckPool(p2); err != nil {
				t.Fatalf("%s (kept %s): %v", label, rep.KeptString(), err)
			}
			if err := checkSlabOutcome(label, h2, p2, root, baseLive); err != nil {
				t.Errorf("%v (kept %s)", err, rep.KeptString())
			}
		}
	}
}

// FuzzSlabClasses churns allocations and frees across every size class
// (including large bump allocations past the biggest class) from a
// fuzzer-chosen op string, holding a canary in each live block. Any slab
// bookkeeping bug — overlapping slots, a reused live slot, a span carve
// that tramples a neighbor — corrupts some canary or fails the structural
// pool check.
func FuzzSlabClasses(f *testing.F) {
	f.Add([]byte{0x00, 0x21, 0x42, 0x63, 0x84, 0xa5, 0x01, 0x22})
	f.Add([]byte{0x10, 0x30, 0x50, 0x70, 0x90, 0x11, 0x31, 0x51})
	f.Add([]byte{0xf0, 0xf2, 0xf4, 0xf1, 0xf3, 0xf5, 0x08, 0x09})
	f.Fuzz(func(t *testing.T, ops []byte) {
		if len(ops) > 512 {
			ops = ops[:512]
		}
		as := vm.NewAddressSpace(7)
		h, err := NewHeapDiscard(as, NewStore())
		if err != nil {
			t.Fatal(err)
		}
		p, err := h.CreateSized("fz", 1<<22, 64*1024)
		if err != nil {
			t.Fatal(err)
		}
		type block struct {
			o      oid.OID
			canary uint64
		}
		var live []block
		canary := uint64(0x5eed)
		for i, b := range ops {
			if b&1 == 0 || len(live) == 0 {
				// Sizes sweep every class boundary: 1..4096 hits all nine
				// slab classes on both sides, sel 15 goes to the bump path.
				sel := uint32(b >> 4)
				size := uint32(1) << (sel % 13)
				if sel == 15 {
					size = 5000 // large: beyond the biggest class
				}
				o, err := h.Alloc(p, size)
				if err != nil {
					t.Fatalf("op %d: alloc %d: %v", i, size, err)
				}
				canary = canary*0x9e3779b97f4a7c15 + 1
				ref, err := h.Deref(o, isa.RZ)
				if err != nil {
					t.Fatal(err)
				}
				if err := ref.Store64(0, canary, isa.RZ); err != nil {
					t.Fatal(err)
				}
				live = append(live, block{o, canary})
			} else {
				idx := int(b>>1) % len(live)
				if err := h.Free(live[idx].o); err != nil {
					t.Fatalf("op %d: free: %v", i, err)
				}
				live[idx] = live[len(live)-1]
				live = live[:len(live)-1]
			}
			// Every surviving canary must still be intact after every op.
			for _, blk := range live {
				ref, err := h.Deref(blk.o, isa.RZ)
				if err != nil {
					t.Fatal(err)
				}
				w, err := ref.Load64(0)
				if err != nil {
					t.Fatal(err)
				}
				if w.V != blk.canary {
					t.Fatalf("op %d: block %v canary %#x, want %#x", i, blk.o, w.V, blk.canary)
				}
			}
		}
		if err := h.CheckPool(p); err != nil {
			t.Fatal(err)
		}
	})
}
