package pmem

import (
	"fmt"
	"testing"

	"potgo/internal/emit"
	"potgo/internal/isa"
	"potgo/internal/nvmsim"
	"potgo/internal/oid"
	"potgo/internal/trace"
	"potgo/internal/vm"
)

// Systematic failure injection: a scripted transaction is cut short at
// every possible API-call boundary; after each simulated crash a fresh
// process attaches to the same NVM, recovers, and the data must be exactly
// the pre-transaction state (undo semantics: an uncommitted transaction
// never happened).
//
// This is the property the paper's failure-safety support (tx_begin /
// tx_add_range / tx_pmalloc / tx_pfree / tx_end, §2.1.4) exists to provide.

// txScript runs one scripted transaction against the heap, stopping after
// `steps` API calls (-1 = run to completion, including commit). It returns
// the number of steps available.
func txScript(h *Heap, p *Pool, objs [3]oid.OID, steps int) (int, error) {
	n := 0
	step := func(fn func() error) error {
		if steps >= 0 && n >= steps {
			return errStop
		}
		n++
		return fn()
	}
	deref := func(o oid.OID) Ref {
		r, err := h.Deref(o, isa.RZ)
		if err != nil {
			panic(err)
		}
		return r
	}
	err := func() error {
		if err := step(func() error { return h.TxBegin(p) }); err != nil {
			return err
		}
		if err := step(func() error { return h.TxAddRange(objs[0], 16) }); err != nil {
			return err
		}
		if err := step(func() error { return deref(objs[0]).Store64(0, 1111, isa.RZ) }); err != nil {
			return err
		}
		if err := step(func() error { return h.TxAddRange(objs[1], 16) }); err != nil {
			return err
		}
		if err := step(func() error { return deref(objs[1]).Store64(8, 2222, isa.RZ) }); err != nil {
			return err
		}
		if err := step(func() error {
			_, err := h.TxAlloc(p, 64)
			return err
		}); err != nil {
			return err
		}
		if err := step(func() error { return h.TxFree(objs[2]) }); err != nil {
			return err
		}
		if err := step(func() error { return deref(objs[0]).Store64(8, 3333, isa.RZ) }); err != nil {
			return err
		}
		if err := step(func() error { return h.TxEnd() }); err != nil {
			return err
		}
		return nil
	}()
	if err == errStop {
		err = nil
	}
	return n, err
}

var errStop = fmt.Errorf("crash point reached")

func freshHeap(t *testing.T, as *vm.AddressSpace, store *Store) *Heap {
	t.Helper()
	h, err := NewHeap(as, store, emit.New(trace.Discard{}, emit.Opt), nil)
	if err != nil {
		t.Fatal(err)
	}
	return h
}

func TestCrashAtEveryStep(t *testing.T) {
	// Discover the number of steps with a dry run.
	as := vm.NewAddressSpace(500)
	store := NewStore()
	h := freshHeap(t, as, store)
	p, err := h.Create("cp", 256*1024)
	if err != nil {
		t.Fatal(err)
	}
	var objs [3]oid.OID
	for i := range objs {
		if objs[i], err = h.Alloc(p, 16); err != nil {
			t.Fatal(err)
		}
	}
	total, err := txScript(h, p, objs, -1)
	if err != nil {
		t.Fatal(err)
	}
	if total < 8 {
		t.Fatalf("script too short: %d steps", total)
	}

	// Now crash after every prefix of 0..total-1 steps (total = committed).
	for crashAt := 0; crashAt < total; crashAt++ {
		as := vm.NewAddressSpace(int64(1000 + crashAt))
		store := NewStore()
		h := freshHeap(t, as, store)
		p, err := h.Create("cp", 256*1024)
		if err != nil {
			t.Fatal(err)
		}
		var objs [3]oid.OID
		for i := range objs {
			if objs[i], err = h.Alloc(p, 16); err != nil {
				t.Fatal(err)
			}
		}
		// Committed pre-state.
		for i, o := range objs {
			ref, _ := h.Deref(o, isa.RZ)
			if err := ref.Store64(0, uint64(100+i), isa.RZ); err != nil {
				t.Fatal(err)
			}
			if err := ref.Store64(8, uint64(200+i), isa.RZ); err != nil {
				t.Fatal(err)
			}
			if err := h.Persist(o, 16); err != nil {
				t.Fatal(err)
			}
		}
		// The setup phase is not under test: sync it wholesale so the
		// adversary only operates on the transaction's own stores.
		if err := h.SyncPool(p); err != nil {
			t.Fatal(err)
		}

		if _, err := txScript(h, p, objs, crashAt); err != nil {
			t.Fatalf("crash point %d: %v", crashAt, err)
		}
		if _, err := h.Crash(nvmsim.DropAllPolicy()); err != nil {
			t.Fatal(err)
		}

		// A fresh process recovers.
		h2 := freshHeap(t, as, store)
		p2, err := h2.Open("cp")
		if err != nil {
			t.Fatal(err)
		}
		if err := h2.Recover(p2); err != nil {
			t.Fatalf("crash point %d: recover: %v", crashAt, err)
		}
		// The uncommitted transaction must have fully vanished.
		for i, o := range objs {
			ref, err := h2.Deref(o, isa.RZ)
			if err != nil {
				t.Fatal(err)
			}
			w0, _ := ref.Load64(0)
			w8, _ := ref.Load64(8)
			if w0.V != uint64(100+i) || w8.V != uint64(200+i) {
				t.Fatalf("crash point %d: object %d = (%d,%d), want (%d,%d)",
					crashAt, i, w0.V, w8.V, 100+i, 200+i)
			}
		}
		if h2.NeedsRecovery(p2) {
			t.Fatalf("crash point %d: pool still dirty after recovery", crashAt)
		}
	}
}

// freeScript is the recFree-focused script: a transaction whose only
// effect is tx_pfree of the victim. Steps: TxBegin, TxFree, TxEnd.
func freeScript(h *Heap, p *Pool, victim oid.OID, steps int) (int, error) {
	n := 0
	step := func(fn func() error) error {
		if steps >= 0 && n >= steps {
			return errStop
		}
		n++
		return fn()
	}
	err := func() error {
		if err := step(func() error { return h.TxBegin(p) }); err != nil {
			return err
		}
		if err := step(func() error { return h.TxFree(victim) }); err != nil {
			return err
		}
		return step(func() error { return h.TxEnd() })
	}()
	if err == errStop {
		err = nil
	}
	return n, err
}

// freeWorld builds a heap with a victim object holding known contents.
func freeWorld(t *testing.T, seed int64) (*vm.AddressSpace, *Store, *Heap, *Pool, oid.OID) {
	t.Helper()
	as := vm.NewAddressSpace(seed)
	store := NewStore()
	h := freshHeap(t, as, store)
	p, err := h.Create("cp", 256*1024)
	if err != nil {
		t.Fatal(err)
	}
	victim, err := h.Alloc(p, 16)
	if err != nil {
		t.Fatal(err)
	}
	ref, err := h.Deref(victim, isa.RZ)
	if err != nil {
		t.Fatal(err)
	}
	if err := ref.Store64(0, 0xDEAD, isa.RZ); err != nil {
		t.Fatal(err)
	}
	if err := ref.Store64(8, 0xBEEF, isa.RZ); err != nil {
		t.Fatal(err)
	}
	if err := h.Persist(victim, 16); err != nil {
		t.Fatal(err)
	}
	// Make the setup durable; only the scripted transaction's stores are
	// exposed to the crash adversary.
	if err := h.SyncPool(p); err != nil {
		t.Fatal(err)
	}
	return as, store, h, p, victim
}

// checkVictimAlive asserts the free was NOT applied: contents intact (the
// free-list threading would have overwritten the payload) and the block is
// not handed out again by a same-class allocation.
func checkVictimAlive(t *testing.T, label string, h *Heap, p *Pool, victim oid.OID) {
	t.Helper()
	ref, err := h.Deref(victim, isa.RZ)
	if err != nil {
		t.Fatalf("%s: deref victim: %v", label, err)
	}
	w0, _ := ref.Load64(0)
	w8, _ := ref.Load64(8)
	if w0.V != 0xDEAD || w8.V != 0xBEEF {
		t.Fatalf("%s: victim contents = (%#x,%#x), want (0xdead,0xbeef)", label, w0.V, w8.V)
	}
	o, err := h.Alloc(p, 16)
	if err != nil {
		t.Fatalf("%s: alloc: %v", label, err)
	}
	if o == victim {
		t.Fatalf("%s: free was applied: allocator handed the victim back", label)
	}
}

// TestFreeCrashMatrix crashes the free-only transaction at every API-call
// boundary (tx_pfree is write-ahead: the record is logged during the
// transaction, the block only hits the free list at commit, §2.1.4):
//
//	crash after TxBegin, after TxFree  → free not applied, victim intact
//	run through TxEnd, then crash      → free applied, block reusable
func TestFreeCrashMatrix(t *testing.T) {
	const total = 3 // TxBegin, TxFree, TxEnd
	for crashAt := 0; crashAt <= total; crashAt++ {
		label := fmt.Sprintf("crash point %d", crashAt)
		as, store, h, p, victim := freeWorld(t, int64(3000+crashAt))
		if n, err := freeScript(h, p, victim, crashAt); err != nil {
			t.Fatalf("%s: %v", label, err)
		} else if crashAt == total && n != total {
			t.Fatalf("%s: script has %d steps, want %d", label, n, total)
		}
		if _, err := h.Crash(nvmsim.DropAllPolicy()); err != nil {
			t.Fatal(err)
		}

		h2 := freshHeap(t, as, store)
		p2, err := h2.Open("cp")
		if err != nil {
			t.Fatal(err)
		}
		if err := h2.Recover(p2); err != nil {
			t.Fatalf("%s: recover: %v", label, err)
		}
		if h2.NeedsRecovery(p2) {
			t.Fatalf("%s: pool still dirty after recovery", label)
		}
		if crashAt < total {
			// Uncommitted: the free intent must have vanished with the
			// transaction.
			checkVictimAlive(t, label, h2, p2, victim)
		} else {
			// Committed: the free must be durable — the block comes back.
			o, err := h2.Alloc(p2, 16)
			if err != nil {
				t.Fatalf("%s: alloc: %v", label, err)
			}
			if o != victim {
				t.Fatalf("%s: committed free not applied: alloc = %v, want %v", label, o, victim)
			}
		}
	}
}

// TestFreeIntentDroppedOnAbort aborts the free-only transaction (no crash)
// and checks the victim survives, then frees it for real to prove the
// block was still accounted as allocated.
func TestFreeIntentDroppedOnAbort(t *testing.T) {
	_, _, h, p, victim := freeWorld(t, 4000)
	if err := h.TxBegin(p); err != nil {
		t.Fatal(err)
	}
	if err := h.TxFree(victim); err != nil {
		t.Fatal(err)
	}
	if err := h.TxAbort(); err != nil {
		t.Fatal(err)
	}
	checkVictimAlive(t, "abort", h, p, victim)
	// The victim is still a live allocation: a real free recycles it.
	if err := h.Free(victim); err != nil {
		t.Fatalf("free after abort: %v", err)
	}
	o, err := h.Alloc(p, 16)
	if err != nil {
		t.Fatal(err)
	}
	if o != victim {
		t.Fatalf("free-list head = %v, want the freed victim %v", o, victim)
	}
}

func TestCommittedTransactionSurvivesCrash(t *testing.T) {
	as := vm.NewAddressSpace(77)
	store := NewStore()
	h := freshHeap(t, as, store)
	p, err := h.Create("cp", 256*1024)
	if err != nil {
		t.Fatal(err)
	}
	var objs [3]oid.OID
	for i := range objs {
		if objs[i], err = h.Alloc(p, 16); err != nil {
			t.Fatal(err)
		}
	}
	if err := h.SyncPool(p); err != nil {
		t.Fatal(err)
	}
	if _, err := txScript(h, p, objs, -1); err != nil {
		t.Fatal(err)
	}
	if _, err := h.Crash(nvmsim.DropAllPolicy()); err != nil {
		t.Fatal(err)
	}
	h2 := freshHeap(t, as, store)
	p2, err := h2.Open("cp")
	if err != nil {
		t.Fatal(err)
	}
	if h2.NeedsRecovery(p2) {
		t.Fatal("committed transaction must leave a clean log")
	}
	ref, _ := h2.Deref(objs[0], isa.RZ)
	w0, _ := ref.Load64(0)
	w8, _ := ref.Load64(8)
	if w0.V != 1111 || w8.V != 3333 {
		t.Fatalf("committed values lost: (%d,%d)", w0.V, w8.V)
	}
	// The committed tx_pfree of objs[2] really freed it: the block is
	// reusable by a fresh allocation of the same class.
	o, err := h2.Alloc(p2, 16)
	if err != nil {
		t.Fatal(err)
	}
	if o != objs[2] {
		t.Fatalf("committed free not applied: alloc = %v, want %v", o, objs[2])
	}
}

// TestCrashAtEveryEvent is the instruction-granular strengthening of
// TestCrashAtEveryStep: instead of cutting the scripted transaction at API
// boundaries, the persistence domain is armed to crash just before every
// single persistent store / CLWB / SFENCE the script issues, under both the
// drop-all and torn-line adversaries. After recovery the world must be
// exactly the pre-transaction state or exactly the committed state — never a
// mixture — with a walkable allocator and a clean log.
func TestCrashAtEveryEvent(t *testing.T) {
	build := func(seed int64) (*vm.AddressSpace, *Store, *Heap, *Pool, [3]oid.OID) {
		as := vm.NewAddressSpace(seed)
		store := NewStore()
		h := freshHeap(t, as, store)
		p, err := h.Create("cp", 256*1024)
		if err != nil {
			t.Fatal(err)
		}
		var objs [3]oid.OID
		for i := range objs {
			if objs[i], err = h.Alloc(p, 16); err != nil {
				t.Fatal(err)
			}
			ref, _ := h.Deref(objs[i], isa.RZ)
			if err := ref.Store64(0, uint64(100+i), isa.RZ); err != nil {
				t.Fatal(err)
			}
			if err := ref.Store64(8, uint64(200+i), isa.RZ); err != nil {
				t.Fatal(err)
			}
		}
		if err := h.SyncPool(p); err != nil {
			t.Fatal(err)
		}
		return as, store, h, p, objs
	}

	// Dry run sizes the event span of the full script.
	_, _, h, p, objs := build(7000)
	base := h.NV.Events()
	if _, err := txScript(h, p, objs, -1); err != nil {
		t.Fatal(err)
	}
	span := h.NV.Events() - base
	if span < 20 {
		t.Fatalf("script spans only %d events; expected instruction granularity", span)
	}

	policies := []func(e uint64) nvmsim.Policy{
		func(uint64) nvmsim.Policy { return nvmsim.DropAllPolicy() },
		func(e uint64) nvmsim.Policy { return nvmsim.TornPolicy(e) },
	}
	for e := base; e < base+span; e++ {
		for pi, mk := range policies {
			as, store, h, p, objs := build(7000)
			crashed := func() (crashed bool) {
				defer func() {
					if r := recover(); r != nil {
						if _, ok := nvmsim.AsCrashSignal(r); !ok {
							panic(r)
						}
						crashed = true
					}
				}()
				h.NV.Arm(e)
				defer h.NV.Disarm()
				if _, err := txScript(h, p, objs, -1); err != nil {
					t.Fatal(err)
				}
				return false
			}()
			if !crashed {
				t.Fatalf("event %d never reached (span %d)", e, span)
			}
			if _, err := h.Crash(mk(e)); err != nil {
				t.Fatal(err)
			}

			h2 := freshHeap(t, as, store)
			p2, err := h2.Open("cp")
			if err != nil {
				t.Fatal(err)
			}
			if err := h2.Recover(p2); err != nil {
				t.Fatalf("event %d policy %d: recover: %v", e, pi, err)
			}
			if h2.NeedsRecovery(p2) {
				t.Fatalf("event %d policy %d: pool still dirty after recovery", e, pi)
			}
			if err := h2.CheckPool(p2); err != nil {
				t.Fatalf("event %d policy %d: %v", e, pi, err)
			}
			read := func(o oid.OID, off uint32) uint64 {
				ref, err := h2.Deref(o, isa.RZ)
				if err != nil {
					t.Fatal(err)
				}
				w, _ := ref.Load64(off)
				return w.V
			}
			switch w := read(objs[0], 0); w {
			case 100: // undone: the transaction never happened
				want := [3][2]uint64{{100, 200}, {101, 201}, {102, 202}}
				for i, o := range objs {
					if g0, g8 := read(o, 0), read(o, 8); g0 != want[i][0] || g8 != want[i][1] {
						t.Fatalf("event %d policy %d: undone obj %d = (%d,%d), want (%d,%d)",
							e, pi, i, g0, g8, want[i][0], want[i][1])
					}
				}
			case 1111: // committed: every effect landed, including the free
				if g8 := read(objs[0], 8); g8 != 3333 {
					t.Fatalf("event %d policy %d: committed objs[0] = (1111,%d)", e, pi, g8)
				}
				if g0, g8 := read(objs[1], 0), read(objs[1], 8); g0 != 101 || g8 != 2222 {
					t.Fatalf("event %d policy %d: committed objs[1] = (%d,%d)", e, pi, g0, g8)
				}
				o, err := h2.Alloc(p2, 16)
				if err != nil {
					t.Fatal(err)
				}
				if o != objs[2] {
					t.Fatalf("event %d policy %d: committed free not applied (alloc %v, want %v)",
						e, pi, o, objs[2])
				}
			default:
				t.Fatalf("event %d policy %d: objs[0] word 0 = %d: neither pre nor post state", e, pi, w)
			}
		}
	}
}
