package pmem

import "potgo/internal/obs"

// PublishMetrics adds the heap's library-activity counters to the registry
// under "pmem.". Counters aggregate across heaps sharing a registry. Safe on
// a nil registry.
func (h *Heap) PublishMetrics(reg *obs.Registry) {
	if reg == nil {
		return
	}
	s := h.StatsSnapshot()
	reg.Counter("pmem.tx.begins").Add(s.TxBegins)
	reg.Counter("pmem.tx.commits").Add(s.TxCommits)
	reg.Counter("pmem.tx.aborts").Add(s.TxAborts)
	reg.Counter("pmem.tx.undo_records").Add(s.UndoRecords)
	reg.Counter("pmem.tx.undo_bytes").Add(s.UndoBytes)
	reg.Counter("pmem.alloc.allocs").Add(s.Allocs)
	reg.Counter("pmem.alloc.frees").Add(s.Frees)
	reg.Counter("pmem.alloc.bytes").Add(s.AllocBytes)
	reg.Counter("pmem.persists").Add(s.Persists)
	reg.Counter("pmem.pools.created").Add(s.PoolsCreated)
	reg.Counter("pmem.pools.opened").Add(s.PoolsOpened)
}
