package pmem

import "potgo/internal/obs"

// PublishMetrics adds the heap's library-activity counters to the registry
// under "pmem.". Counters aggregate across heaps sharing a registry. Safe on
// a nil registry.
func (h *Heap) PublishMetrics(reg *obs.Registry) {
	if reg == nil {
		return
	}
	s := h.StatsSnapshot()
	reg.Counter("pmem.tx.begins").Add(s.TxBegins)
	reg.Counter("pmem.tx.commits").Add(s.TxCommits)
	reg.Counter("pmem.tx.aborts").Add(s.TxAborts)
	reg.Counter("pmem.tx.undo_records").Add(s.UndoRecords)
	reg.Counter("pmem.tx.undo_bytes").Add(s.UndoBytes)
	reg.Counter("pmem.alloc.allocs").Add(s.Allocs)
	reg.Counter("pmem.alloc.frees").Add(s.Frees)
	reg.Counter("pmem.alloc.bytes").Add(s.AllocBytes)
	reg.Counter("pmem.persists").Add(s.Persists)
	reg.Counter("pmem.pools.created").Add(s.PoolsCreated)
	reg.Counter("pmem.pools.opened").Add(s.PoolsOpened)
	reg.Counter("pmem.alloc.spans_carved").Add(s.SpansCarved)
	reg.Counter("pmem.groupcommit.fences").Add(s.GroupCommits)
	reg.Counter("pmem.groupcommit.txns").Add(s.GroupCommitTxns)

	// Slab occupancy across the currently open pools: carved spans, total
	// slab slots, and the fraction of them live. Gauges (point-in-time),
	// unlike the monotone counters above.
	var spans, slots, live int
	for _, p := range h.open {
		sp, st, lv := h.SlabStats(p)
		spans += sp
		slots += st
		live += lv
	}
	reg.Gauge("pmem.slab.spans").Set(float64(spans))
	reg.Gauge("pmem.slab.slots").Set(float64(slots))
	reg.Gauge("pmem.slab.live_slots").Set(float64(live))
	if slots > 0 {
		reg.Gauge("pmem.slab.occupancy").Set(float64(live) / float64(slots))
	}
}

// AttachObs hands the heap live metric handles for hot-path observations
// that cannot wait for an end-of-run PublishMetrics: currently the
// group-commit batch-size histogram (how many committers each leader
// SFENCE covered). Safe on a nil registry (the handles become no-ops);
// call before sharing the heap across goroutines.
func (h *Heap) AttachObs(reg *obs.Registry) {
	h.gc.batchHist = reg.Histogram("pmem.groupcommit.batch_size", 1, 2, 4, 8, 16, 32, 64)
}
