package pmem

import "fmt"

// CheckPool validates a pool's allocator metadata against the structural
// invariants every crash + recovery must preserve. It reads the mapped
// bytes functionally (no instruction emission), so the crash-injection
// engine can call it on a freshly reopened, recovered heap without
// perturbing the event stream.
//
// Checked invariants:
//
//   - header sanity: magic, size, log bounds match the backing; the bump
//     pointer and root object lie inside the data region;
//   - every free-list entry is a properly aligned block below the bump
//     pointer whose size word equals its class size;
//   - no block appears twice (within one list or across lists), and no two
//     free blocks overlap — the double-free / double-threading detector;
//   - free lists are acyclic (bounded walk).
func (h *Heap) CheckPool(p *Pool) error {
	if got := h.read64(p, offMagic); got != poolMagic {
		return fmt.Errorf("pmem: check %q: bad magic %#x", p.b.name, got)
	}
	if got := h.read64(p, offSize); got != p.b.size {
		return fmt.Errorf("pmem: check %q: header size %d != backing size %d", p.b.name, got, p.b.size)
	}
	if got := h.read64(p, offLogBytes); got != p.b.logBytes {
		return fmt.Errorf("pmem: check %q: header log size %d != backing %d", p.b.name, got, p.b.logBytes)
	}
	bump := h.read64(p, offBump)
	if bump < p.dataStart() || bump > p.b.size {
		return fmt.Errorf("pmem: check %q: bump %#x outside data region [%#x,%#x]",
			p.b.name, bump, p.dataStart(), p.b.size)
	}
	rootOff := h.read64(p, offRootOff)
	rootSize := h.read64(p, offRootSize)
	if rootOff != 0 {
		if rootOff < p.dataStart() || rootOff+rootSize > bump {
			return fmt.Errorf("pmem: check %q: root %#x+%d outside allocated region",
				p.b.name, rootOff, rootSize)
		}
	}

	// Walk every free list, collecting [start,end) extents of free blocks.
	type extent struct {
		start, end uint64
		class      int
	}
	var extents []extent
	seen := make(map[uint64]int)
	for class, classSize := range sizeClasses {
		cur := h.read64(p, uint32(p.freeHeadOff(class)))
		for steps := 0; cur != 0; steps++ {
			if steps >= 1<<20 {
				return fmt.Errorf("pmem: check %q: free list class %d longer than %d entries (cycle?)",
					p.b.name, class, 1<<20)
			}
			if cur < p.dataStart() || cur%8 != 0 ||
				cur+blockHeaderBytes+uint64(classSize) > bump {
				return fmt.Errorf("pmem: check %q: free list class %d holds invalid block %#x",
					p.b.name, class, cur)
			}
			if prev, dup := seen[cur]; dup {
				return fmt.Errorf("pmem: check %q: block %#x on free lists %d and %d",
					p.b.name, cur, prev, class)
			}
			seen[cur] = class
			if got := h.read64(p, uint32(cur)); got != uint64(classSize) {
				return fmt.Errorf("pmem: check %q: free block %#x has size word %d, class %d expects %d",
					p.b.name, cur, got, class, classSize)
			}
			extents = append(extents, extent{cur, cur + blockHeaderBytes + uint64(classSize), class})
			cur = h.read64(p, uint32(cur)+blockHeaderBytes)
		}
	}
	// Overlap check across classes (same-class duplicates already caught).
	for i := range extents {
		for j := i + 1; j < len(extents); j++ {
			a, b := extents[i], extents[j]
			if a.start < b.end && b.start < a.end {
				return fmt.Errorf("pmem: check %q: free blocks %#x (class %d) and %#x (class %d) overlap",
					p.b.name, a.start, a.class, b.start, b.class)
			}
		}
	}
	return nil
}

// CheckAll runs CheckPool over every open pool.
func (h *Heap) CheckAll() error {
	for _, p := range h.open {
		if err := h.CheckPool(p); err != nil {
			return err
		}
	}
	return nil
}
