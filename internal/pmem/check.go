package pmem

import "fmt"

// CheckPool validates a pool's allocator metadata against the structural
// invariants every crash + recovery must preserve. It reads the mapped
// bytes functionally (no instruction emission), so the crash-injection
// engine can call it on a freshly reopened, recovered heap without
// perturbing the event stream.
//
// Checked invariants:
//
//   - header sanity: magic, size, log bounds match the backing; the bump
//     pointer and root object lie inside the data region;
//   - every span chained from a class head is a well-formed slab span: valid
//     header magic, its class matches the chain it hangs on, its slot count
//     is in range, and it lies wholly inside [dataStart, bump);
//   - no span appears twice (within one chain or across chains), and no two
//     spans overlap — the double-carve / double-threading detector;
//   - span chains are acyclic (bounded walk);
//   - no bitmap has occupancy bits beyond its span's slot count.
func (h *Heap) CheckPool(p *Pool) error {
	if got := h.read64(p, offMagic); got != poolMagic {
		return fmt.Errorf("pmem: check %q: bad magic %#x", p.b.name, got)
	}
	if got := h.read64(p, offSize); got != p.b.size {
		return fmt.Errorf("pmem: check %q: header size %d != backing size %d", p.b.name, got, p.b.size)
	}
	if got := h.read64(p, offLogBytes); got != p.b.logBytes {
		return fmt.Errorf("pmem: check %q: header log size %d != backing %d", p.b.name, got, p.b.logBytes)
	}
	if got := h.read64(p, offParityBytes); got != p.b.parityBytes {
		return fmt.Errorf("pmem: check %q: header parity size %d != backing %d", p.b.name, got, p.b.parityBytes)
	}
	bump := h.read64(p, offBump)
	if bump < p.dataStart() || bump > p.b.size {
		return fmt.Errorf("pmem: check %q: bump %#x outside data region [%#x,%#x]",
			p.b.name, bump, p.dataStart(), p.b.size)
	}
	rootOff := h.read64(p, offRootOff)
	rootSize := h.read64(p, offRootSize)
	if rootOff != 0 {
		if rootOff < p.dataStart() || rootOff+rootSize > bump {
			return fmt.Errorf("pmem: check %q: root %#x+%d outside allocated region",
				p.b.name, rootOff, rootSize)
		}
	}

	// Walk every class chain, collecting [start,end) span extents.
	type extent struct {
		start, end uint64
		class      int
	}
	var extents []extent
	seen := make(map[uint64]int)
	for class := range sizeClasses {
		cur := h.read64(p, p.freeHeadOff(class))
		for steps := 0; cur != 0; steps++ {
			if steps >= 1<<20 {
				return fmt.Errorf("pmem: check %q: span chain class %d longer than %d entries (cycle?)",
					p.b.name, class, 1<<20)
			}
			if cur < p.dataStart() || cur%8 != 0 || cur+spanHeaderBytes > bump {
				return fmt.Errorf("pmem: check %q: class %d chain holds invalid span %#x",
					p.b.name, class, cur)
			}
			if prev, dup := seen[cur]; dup {
				return fmt.Errorf("pmem: check %q: span %#x on chains %d and %d",
					p.b.name, cur, prev, class)
			}
			seen[cur] = class
			w0 := h.read64(p, uint32(cur))
			c, slots, ft, ok := parseSpanWord0(w0)
			if !ok || c != class {
				return fmt.Errorf("pmem: check %q: span %#x has bad header %#x (chain class %d)",
					p.b.name, cur, w0, class)
			}
			if ft != p.ft() {
				return fmt.Errorf("pmem: check %q: span %#x fault-tolerance bit %v != pool %v",
					p.b.name, cur, ft, p.ft())
			}
			end := cur + uint64(spanHdrBytes(slots, ft)) + uint64(slots)*uint64(sizeClasses[class])
			if end > bump {
				return fmt.Errorf("pmem: check %q: span %#x (%d slots) overruns bump %#x",
					p.b.name, cur, slots, bump)
			}
			bits := h.read64(p, uint32(cur)+spanOffBitmap)
			mask := ^uint64(0)
			if slots < 64 {
				mask = uint64(1)<<slots - 1
			}
			if bits&^mask != 0 {
				return fmt.Errorf("pmem: check %q: span %#x bitmap %#x has bits beyond %d slots",
					p.b.name, cur, bits, slots)
			}
			extents = append(extents, extent{cur, end, class})
			cur = h.read64(p, uint32(cur)+spanOffNext)
		}
	}
	// Overlap check across chains (same-chain duplicates already caught).
	for i := range extents {
		for j := i + 1; j < len(extents); j++ {
			a, b := extents[i], extents[j]
			if a.start < b.end && b.start < a.end {
				return fmt.Errorf("pmem: check %q: spans %#x (class %d) and %#x (class %d) overlap",
					p.b.name, a.start, a.class, b.start, b.class)
			}
		}
	}
	return nil
}

// CheckAll runs CheckPool over every open pool.
func (h *Heap) CheckAll() error {
	for _, p := range h.open {
		if err := h.CheckPool(p); err != nil {
			return err
		}
	}
	return nil
}
