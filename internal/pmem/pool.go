package pmem

import (
	"fmt"

	"potgo/internal/oid"
	"potgo/internal/vm"
)

// Persistent pool layout. The first page is the header; an undo-log region
// follows; object data fills the rest. All header fields are 8-byte words so
// that every metadata access is a single persistent load/store.
//
//	0x00  magic
//	0x08  pool size in bytes
//	0x10  bump pointer (offset of the next never-allocated byte)
//	0x18  root object offset (0 = not yet created)
//	0x20  root object size
//	0x28  log region size in bytes
//	0x30  free-list heads, one word per size class
//	0x78  parity region size in bytes (0 = no media-fault tolerance)
//	...
//	0x1000                        undo log: [count][state][records...]
//	0x1000+logBytes               XOR-parity column (fault-tolerant pools)
//	0x1000+logBytes+parityBytes   object data
const (
	poolMagic      = 0x504f4f4c_474f4f44 // "POOLGOOD"
	offMagic       = 0
	offSize        = 8
	offBump        = 16
	offRootOff     = 24
	offRootSize    = 32
	offLogBytes    = 40
	offFreeHead    = 48  // + 8*class
	offParityBytes = 120 // first word past the free heads
	headerBytes    = vm.PageSize
	logStart       = headerBytes
)

// Undo-log region layout (offsets relative to logStart). The count word
// publishes records; the state word is the commit marker that decides
// whether recovery undoes (active) or redoes (committed) the logged
// transaction. Count and state share a cache line but are separate 8-byte
// words, so each is atomic even under torn-line crashes.
const (
	logOffCount   = 0
	logOffState   = 8
	logOffRecords = 16

	txStateActive    = 0 // records describe an uncommitted transaction: undo
	txStateCommitted = 1 // data is durable, deferred frees may be half-applied: redo
)

// sizeClasses are the slab allocator's size classes (payload bytes). Larger
// requests are bump-allocated exactly.
var sizeClasses = [...]uint32{16, 32, 64, 128, 256, 512, 1024, 2048, 4096}

// classSlots is each class's preferred slots-per-span count (shrunk to fit
// when the pool's remaining space is smaller). At most 64 so one bitmap
// word covers a span.
var classSlots = [...]uint32{64, 64, 32, 16, 8, 4, 2, 1, 1}

// Slab span on-media layout: a 24-byte header followed — in fault-tolerant
// pools — by a per-slot CRC32C checksum array (4 bytes per slot, rounded up
// to a whole word), then slots*classSize payload bytes.
//
//	word 0  spanMagic<<32 | ft<<24 | slots<<8 | class
//	word 1  pool offset of the next span in this class's chain (0 = end)
//	word 2  occupancy bitmap, bit i = slot i is allocated
//	[ft]    checksum array: uint32 CRC32C of slot i's full payload
const (
	spanMagic       = 0x53504131 // "SPA1"
	spanHeaderBytes = 24
	spanOffWord0    = 0
	spanOffNext     = 8
	spanOffBitmap   = 16
	spanOffCsum     = 24 // + 4*slot, fault-tolerant spans only
	spanFTBit       = 1 << 24
)

// spanHdrBytes returns the full header size of a span: the fixed 24 bytes
// plus, for fault-tolerant spans, the word-rounded checksum array.
func spanHdrBytes(slots uint32, ft bool) uint32 {
	if !ft {
		return spanHeaderBytes
	}
	return spanHeaderBytes + (4*slots+7)&^7
}

// spanWord0 encodes a span header's first word.
func spanWord0(class int, slots uint32, ft bool) uint64 {
	w := uint64(spanMagic)<<32 | uint64(slots)<<8 | uint64(class)
	if ft {
		w |= spanFTBit
	}
	return w
}

// parseSpanWord0 decodes a span header word, rejecting bad magic or fields.
func parseSpanWord0(w uint64) (class int, slots uint32, ft, ok bool) {
	if w>>32 != spanMagic {
		return 0, 0, false, false
	}
	class = int(w & 0xff)
	slots = uint32(w>>8) & 0xffff
	ft = w&spanFTBit != 0
	if class >= len(sizeClasses) || slots == 0 || slots > 64 {
		return 0, 0, false, false
	}
	return class, slots, ft, true
}

// DefaultLogBytes is the default undo-log capacity per pool. Kept small so
// the EACH pattern (hundreds of single-object pools) stays cheap; the log
// only ever needs to hold one transaction's undo records.
const DefaultLogBytes = 8 * 1024

// MinPoolBytes is the smallest legal pool: header + log + one data page.
func MinPoolBytes(logBytes uint64) uint64 { return headerBytes + logBytes + vm.PageSize }

// Pool is an open pool mapped into the process's address space.
type Pool struct {
	h      *Heap
	b      *backing
	region vm.Region
	// alloc is the volatile slab index, rebuilt from the durable span
	// chains when the pool is mapped.
	alloc *allocState
	// mvcc marks the pool as snapshot-versioned: commits touching it
	// publish post-images into the heap's epoch mirror (see mvcc.go).
	mvcc bool
}

// ID returns the pool's system-wide identifier.
func (p *Pool) ID() oid.PoolID { return p.b.id }

// Name returns the name the pool was created under.
func (p *Pool) Name() string { return p.b.name }

// Base returns the virtual address the pool is currently mapped at.
func (p *Pool) Base() uint64 { return p.region.Base }

// Size returns the pool size in bytes.
func (p *Pool) Size() uint64 { return p.b.size }

// dataStart is the offset of the first allocatable byte (past the parity
// column, which is empty for pools without media-fault tolerance).
func (p *Pool) dataStart() uint64 { return logStart + p.b.logBytes + p.b.parityBytes }

// LogBytes returns the pool's undo-log region capacity.
func (p *Pool) LogBytes() uint64 { return p.b.logBytes }

// LogStart is the pool offset where the log region begins (after the header
// page). Exported for applications that manage their own log in the region,
// like the TPC-C workload's logical transaction log.
const LogStart = logStart

// OID forms an ObjectID for an offset within this pool.
func (p *Pool) OID(off uint32) oid.OID { return oid.New(p.b.id, off) }

// classOf returns the size-class index for a payload size, or -1 for large
// (bump-only) allocations, along with the class payload size.
func classOf(size uint32) (int, uint32) {
	for i, c := range sizeClasses {
		if size <= c {
			return i, c
		}
	}
	// Large: exact size rounded to 16.
	return -1, (size + 15) &^ 15
}

func (p *Pool) freeHeadOff(class int) uint32 {
	return uint32(offFreeHead + 8*class)
}

// checkOffset validates that an object offset lies in the data region.
func (p *Pool) checkOffset(off uint32, size uint32) error {
	if uint64(off) < p.dataStart() || uint64(off)+uint64(size) > p.b.size {
		return fmt.Errorf("pmem: offset %#x+%d outside pool %q data region", off, size, p.b.name)
	}
	return nil
}
