package pmem

import (
	"math/rand"
	"testing"
	"testing/quick"

	"potgo/internal/emit"
	"potgo/internal/isa"
	"potgo/internal/oid"
	"potgo/internal/trace"
	"potgo/internal/vm"
)

// Property: across any interleaving of allocations and frees, live
// allocations never overlap, stay within the pool's data region, and freed
// blocks are recycled only after being freed.
func TestQuickAllocatorSafety(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		as := vm.NewAddressSpace(seed)
		em := emit.New(trace.Discard{}, emit.Opt)
		h, err := NewHeap(as, NewStore(), em, nil)
		if err != nil {
			return false
		}
		p, err := h.CreateSized("q", 1<<20, 4096)
		if err != nil {
			return false
		}
		type block struct {
			o    oid.OID
			size uint32
		}
		var live []block
		for i := 0; i < 300; i++ {
			if rng.Intn(3) > 0 || len(live) == 0 {
				size := uint32(rng.Intn(200) + 1)
				o, err := h.Alloc(p, size)
				if err != nil {
					return false
				}
				// In-bounds.
				if err := p.checkOffset(o.Offset(), size); err != nil {
					return false
				}
				// No overlap with any live block (conservatively
				// using the class-rounded extent).
				_, cs := classOf(size)
				for _, b := range live {
					_, bcs := classOf(b.size)
					aLo, aHi := uint64(o.Offset()), uint64(o.Offset())+uint64(cs)
					bLo, bHi := uint64(b.o.Offset()), uint64(b.o.Offset())+uint64(bcs)
					if aLo < bHi && bLo < aHi {
						return false
					}
				}
				live = append(live, block{o, size})
			} else {
				idx := rng.Intn(len(live))
				if err := h.Free(live[idx].o); err != nil {
					return false
				}
				live = append(live[:idx], live[idx+1:]...)
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

// Property: allocator state round-trips through close/open — live blocks
// keep their contents and the free list keeps working.
func TestQuickAllocatorPersistence(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed ^ 0x9e3779b9))
		as := vm.NewAddressSpace(seed)
		store := NewStore()
		em := emit.New(trace.Discard{}, emit.Opt)
		h, err := NewHeap(as, store, em, nil)
		if err != nil {
			return false
		}
		p, err := h.CreateSized("q", 512*1024, 4096)
		if err != nil {
			return false
		}
		vals := map[oid.OID]uint64{}
		for i := 0; i < 40; i++ {
			o, err := h.Alloc(p, 32)
			if err != nil {
				return false
			}
			v := rng.Uint64()
			ref, err := h.Deref(o, isa.RZ)
			if err != nil {
				return false
			}
			if err := ref.Store64(0, v, isa.RZ); err != nil {
				return false
			}
			vals[o] = v
		}
		if err := h.Close(p); err != nil {
			return false
		}
		p, err = h.Open("q")
		if err != nil {
			return false
		}
		for o, v := range vals {
			ref, err := h.Deref(o, isa.RZ)
			if err != nil {
				return false
			}
			w, err := ref.Load64(0)
			if err != nil || w.V != v {
				return false
			}
		}
		// The allocator keeps functioning after reopen without
		// clobbering the old blocks.
		o, err := h.Alloc(p, 32)
		if err != nil {
			return false
		}
		if _, dup := vals[o]; dup {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 15}); err != nil {
		t.Error(err)
	}
}
