package pmem

import (
	"fmt"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"

	"potgo/internal/core"
	"potgo/internal/emit"
	"potgo/internal/isa"
	"potgo/internal/nvmsim"
	"potgo/internal/obs"
	"potgo/internal/oid"
	"potgo/internal/pot"
	"potgo/internal/trace"
	"potgo/internal/vm"
)

// Heap is a process's view of persistent memory: the set of open pools plus
// the machinery that compiles persistent accesses into the instruction
// stream (software translation in BASE mode, nvld/nvst in OPT mode).
type Heap struct {
	// AS is the process address space pools are mapped into.
	AS *vm.AddressSpace
	// Store is the durable pool store.
	Store *Store
	// Emit receives the compiled instruction stream.
	Emit *emit.Emitter
	// Soft is the BASE-mode software translator. Required when
	// Emit.Mode() == emit.Base.
	Soft *emit.SoftTranslator
	// POT, when non-nil, receives pool mappings for the hardware walker
	// (the OS-level half of pool_open in the paper's §3.3).
	POT *pot.Table
	// HW, when non-nil, has stale POLB entries invalidated on pool_close.
	HW *core.Translator
	// NV is the volatile write-back cache model: it tracks which pool
	// lines are newer in cache than in durable NVM, drains them on
	// fences, and decides their fate at a Crash.
	NV *nvmsim.Domain

	// Metrics counts library activity for the observability layer.
	// Updated with atomic adds so concurrent heaps never race; read a
	// coherent copy through StatsSnapshot.
	Metrics HeapStats

	open map[oid.PoolID]*Pool
	// txs tracks the live transaction per pool (an undo log is singular).
	// Guarded by txMu; independent pools commit in parallel.
	txMu sync.Mutex
	txs  map[oid.PoolID]*Tx
	// txFree recycles retired Tx handles (and their snapshot arenas) so a
	// steady-state commit loop stops allocating. Guarded by txMu.
	txFree []*Tx
	// ambient is the legacy single-transaction API's implicit handle.
	ambient *Tx
	// clwbPool memoizes the pool the last observed CLWB landed in;
	// persist loops write back runs of lines from one pool. Disabled in
	// concurrent mode (unsynchronized cross-goroutine state).
	clwbPool *Pool

	// concurrent marks a heap shared by multiple goroutines (see
	// SetConcurrent): the persistence domain is serialized behind nvMu
	// and single-threaded memos are bypassed.
	concurrent bool
	nvMu       sync.Mutex
	gc         groupCommit

	// verifyOnRead makes Deref of an object in a fault-tolerant pool
	// check its stored CRC32C first (see SetVerifyOnRead).
	verifyOnRead bool
	// txActive counts live transactions; VerifyOnRead stands down while
	// any is open, because checksums are only recomputed at commit.
	txActive int32
	// ftNoParity disables parity-column maintenance — a deliberately
	// injected bug for the CI mutation check (see MutateNoParity).
	ftNoParity bool
	// ftDefault routes Create/CreateSized to the fault-tolerant layout
	// (see SetFTDefault); the size grows by the parity column so data
	// capacity is unchanged.
	ftDefault bool
	// ftPools counts open fault-tolerant pools, so commit's checksum and
	// parity maintenance costs one compare on heaps that have none.
	ftPools int

	// mvcc is the epoch-versioned snapshot mirror (see mvcc.go), nil until
	// EnableMVCC attaches it; heaps that never enable it pay one nil check
	// per commit.
	mvcc *MVCC
}

// groupCommit coordinates group commit: concurrently-committing goroutines
// that reach a fence point share one leader-issued SFENCE instead of each
// draining the domain themselves (see Heap.fence).
type groupCommit struct {
	mu   sync.Mutex
	cond *sync.Cond
	// collecting marks a leader holding the batch open for new arrivals;
	// fencing marks the batch sealed with its SFENCE in flight.
	collecting, fencing bool
	// gen counts completed fences; arrivals compute the generation whose
	// completion guarantees a fence started after their own CLWBs.
	gen     uint64
	waiters uint64
	// dead is set when the leader's fence crashed (armed crash injection):
	// the machine is gone, so woken waiters propagate a poisoned signal
	// instead of claiming durability.
	dead bool
	// batchHist, when attached (AttachObs), records each batch's size —
	// how many committers one leader SFENCE covered.
	batchHist *obs.Histogram
}

// fence orders all prior cache-line write-backs: the paper's SFENCE. In
// sequential mode it emits the fence directly. In concurrent mode it runs
// the group-commit protocol: because one SFENCE drains every in-flight line
// in the persistence domain (all pools, all writers), simultaneous
// committers can share a single fence — the first arrival becomes leader,
// briefly holds the batch open for followers, issues one SFENCE, and
// releases everyone whose write-backs preceded it. Followers' CLWBs
// happen-before their arrival (both run under the domain lock), so the
// leader's fence covers them; arrivals after the batch seals wait for the
// next generation's fence.
func (h *Heap) fence() {
	if !h.concurrent {
		h.Emit.SFence()
		return
	}
	h.groupFence()
}

func (h *Heap) groupFence() {
	gc := &h.gc
	gc.mu.Lock()
	if gc.cond == nil {
		gc.cond = sync.NewCond(&gc.mu)
	}
	// A fence already in flight started before our arrival and may have
	// missed our lines; only a fence that starts now or later (generation
	// gen+2) is guaranteed to cover us.
	need := gc.gen + 1
	if gc.fencing {
		need = gc.gen + 2
	}
	for gc.gen < need {
		if gc.dead {
			gc.mu.Unlock()
			panic(&nvmsim.CrashSignal{Poisoned: true})
		}
		if !gc.fencing && !gc.collecting {
			// Become leader. Hold the batch open across one scheduling
			// window so concurrently-committing goroutines can reach
			// their fence points and share this SFENCE.
			gc.collecting = true
			gc.mu.Unlock()
			runtime.Gosched()
			gc.mu.Lock()
			gc.collecting = false
			gc.fencing = true
			batch := 1 + gc.waiters
			gc.mu.Unlock()
			h.leaderFence()
			gc.mu.Lock()
			gc.fencing = false
			gc.gen++
			gc.cond.Broadcast()
			atomic.AddUint64(&h.Metrics.GroupCommits, 1)
			atomic.AddUint64(&h.Metrics.GroupCommitTxns, batch)
			gc.batchHist.Observe(float64(batch))
			continue
		}
		gc.waiters++
		gc.cond.Wait()
		gc.waiters--
	}
	gc.mu.Unlock()
}

// leaderFence issues the batch's single SFENCE. If the armed crash engine
// fires inside it, the domain is gone mid-batch: mark the group dead and
// wake the waiters (who panic poisoned) before propagating the signal.
func (h *Heap) leaderFence() {
	defer func() {
		if r := recover(); r != nil {
			gc := &h.gc
			gc.mu.Lock()
			gc.dead = true
			gc.cond.Broadcast()
			gc.mu.Unlock()
			panic(r)
		}
	}()
	h.Emit.SFence()
}

// StatsSnapshot returns a coherent copy of the heap's activity counters
// (atomic loads, safe while workers are running).
func (h *Heap) StatsSnapshot() HeapStats {
	var mvPub, mvRec uint64
	if h.mvcc != nil {
		mvPub, mvRec = h.mvcc.Stats()
	}
	return HeapStats{
		MVCCPublishes: mvPub,
		MVCCReclaimed: mvRec,
		TxBegins:        atomic.LoadUint64(&h.Metrics.TxBegins),
		TxCommits:       atomic.LoadUint64(&h.Metrics.TxCommits),
		TxAborts:        atomic.LoadUint64(&h.Metrics.TxAborts),
		UndoRecords:     atomic.LoadUint64(&h.Metrics.UndoRecords),
		UndoBytes:       atomic.LoadUint64(&h.Metrics.UndoBytes),
		Allocs:          atomic.LoadUint64(&h.Metrics.Allocs),
		Frees:           atomic.LoadUint64(&h.Metrics.Frees),
		AllocBytes:      atomic.LoadUint64(&h.Metrics.AllocBytes),
		SpansCarved:     atomic.LoadUint64(&h.Metrics.SpansCarved),
		GroupCommits:    atomic.LoadUint64(&h.Metrics.GroupCommits),
		GroupCommitTxns: atomic.LoadUint64(&h.Metrics.GroupCommitTxns),
		Persists:        atomic.LoadUint64(&h.Metrics.Persists),
		PoolsCreated:    atomic.LoadUint64(&h.Metrics.PoolsCreated),
		PoolsOpened:     atomic.LoadUint64(&h.Metrics.PoolsOpened),
	}
}

// HeapStats counts persistent-memory library activity.
type HeapStats struct {
	// TxBegins / TxCommits / TxAborts count transaction lifecycle calls.
	TxBegins, TxCommits, TxAborts uint64
	// UndoRecords counts undo-log records appended (tx_add_range
	// snapshots, transactional allocations and free intents together);
	// UndoBytes is their durable log footprint including headers.
	UndoRecords, UndoBytes uint64
	// Allocs / Frees count pmalloc/pfree operations (transactional and
	// not); AllocBytes is the total payload requested.
	Allocs, Frees, AllocBytes uint64
	// SpansCarved counts slab spans cut off the bump region.
	SpansCarved uint64
	// GroupCommits counts leader fences issued by the group-commit
	// protocol; GroupCommitTxns is the total number of committers those
	// fences covered (batch size = GroupCommitTxns / GroupCommits).
	GroupCommits, GroupCommitTxns uint64
	// Persists counts Persist range flushes (CLWB runs + fence).
	Persists uint64
	// PoolsCreated / PoolsOpened count pool_create / pool_open calls.
	PoolsCreated, PoolsOpened uint64
	// MVCCPublishes / MVCCReclaimed count snapshot versions published by
	// commits and freed by epoch reclamation (zero on heaps without MVCC).
	MVCCPublishes, MVCCReclaimed uint64
}

// NewHeap builds a heap. soft may be nil for OPT-mode heaps.
func NewHeap(as *vm.AddressSpace, store *Store, em *emit.Emitter, soft *emit.SoftTranslator) (*Heap, error) {
	if em.Mode() == emit.Base && soft == nil {
		return nil, fmt.Errorf("pmem: BASE mode requires a software translator")
	}
	h := &Heap{
		AS:    as,
		Store: store,
		Emit:  em,
		Soft:  soft,
		NV:    nvmsim.NewDomain(),
		open:  make(map[oid.PoolID]*Pool),
		txs:   make(map[oid.PoolID]*Tx),
	}
	em.SetPersistObserver(h)
	return h, nil
}

// SetConcurrent marks the heap as shared by multiple goroutines. From this
// point on:
//
//   - every persistence-domain event (store dirtying, CLWB, SFENCE) is
//     serialized behind an internal mutex, so the volatile-cache model and
//     its crash-event numbering stay coherent;
//   - single-threaded memos (the CLWB pool cache) are bypassed;
//   - the caller must still serialize access to each pool's data — the
//     heap does not lock pools. Sharded provides that discipline, along
//     with stop-the-world structural operations (create/open/close/crash).
//
// The emitter should be detached (Emit.Detach) and the address space put in
// concurrent mode (AS.SetConcurrent) alongside; NewSharded does all three.
func (h *Heap) SetConcurrent() {
	h.concurrent = true
	h.clwbPool = nil
}

// NewHeapDiscard builds an OPT-mode heap that discards its instruction
// stream — the configuration crash-injection and fuzzing harnesses use,
// where only the persistence-domain events matter, not the emitted code.
func NewHeapDiscard(as *vm.AddressSpace, store *Store) (*Heap, error) {
	return NewHeap(as, store, emit.New(trace.Discard{}, emit.Opt), nil)
}

// openCost approximates the system-call + mapping work of pool_open/create;
// it is emitted once per pool and never sits in a measured loop.
const openCost = 60

// Create makes a new pool of the given size (paper: pool_create) with the
// default undo-log capacity, maps it, and registers its translation.
func (h *Heap) Create(name string, size uint64) (*Pool, error) {
	return h.CreateSized(name, size, DefaultLogBytes)
}

// CreateSized is Create with an explicit undo-log capacity.
func (h *Heap) CreateSized(name string, size, logBytes uint64) (*Pool, error) {
	if h.ftDefault {
		return h.CreateSizedFT(name, ftGrow(size, logBytes), logBytes)
	}
	if size < MinPoolBytes(logBytes) {
		return nil, fmt.Errorf("pmem: pool size %d below minimum %d", size, MinPoolBytes(logBytes))
	}
	b, err := h.Store.create(name, size, logBytes, 0)
	if err != nil {
		return nil, err
	}
	p, err := h.mapPool(b)
	if err != nil {
		return nil, err
	}
	// Initialize the header (functional writes; creation is setup, the
	// emitted cost is the flat openCost below) and sync it durably —
	// pool_create ends with the equivalent of an msync, so a crash can
	// never observe a half-initialized header.
	h.mustWrite64(p, offMagic, poolMagic)
	h.mustWrite64(p, offSize, size)
	h.mustWrite64(p, offBump, p.dataStart())
	h.mustWrite64(p, offLogBytes, logBytes)
	if err := h.SyncPool(p); err != nil {
		return nil, err
	}
	h.Emit.Compute(openCost)
	atomic.AddUint64(&h.Metrics.PoolsCreated, 1)
	return p, nil
}

// Open maps a previously created pool (paper: pool_open).
func (h *Heap) Open(name string) (*Pool, error) {
	b, err := h.Store.lookup(name)
	if err != nil {
		return nil, err
	}
	p, err := h.mapPool(b)
	if err != nil {
		return nil, err
	}
	if got := h.read64(p, offMagic); got != poolMagic {
		_ = h.unmapPool(p)
		return nil, fmt.Errorf("pmem: pool %q has bad magic %#x", name, got)
	}
	h.Emit.Compute(openCost)
	atomic.AddUint64(&h.Metrics.PoolsOpened, 1)
	return p, nil
}

func (h *Heap) mapPool(b *backing) (*Pool, error) {
	if b.open {
		return nil, fmt.Errorf("pmem: pool %q already open", b.name)
	}
	region, err := h.AS.Map(b.size)
	if err != nil {
		return nil, err
	}
	if err := h.AS.WriteAt(region.Base, b.data); err != nil {
		return nil, err
	}
	p := &Pool{h: h, b: b, region: region, alloc: &allocState{}}
	b.open = true
	h.open[b.id] = p
	if b.parityBytes != 0 {
		h.ftPools++
	}
	h.NV.AddPool(uint32(b.id), b.size)
	if h.Soft != nil {
		if err := h.Soft.Register(b.id, region.Base); err != nil {
			return nil, err
		}
	}
	if h.POT != nil {
		if err := h.POT.Insert(b.id, region.Base); err != nil {
			return nil, err
		}
	}
	// Rebuild the volatile slab index from the durable span chains. A
	// freshly created backing has no magic yet (CreateSized initializes the
	// header after mapping and starts with no spans); Open re-checks the
	// magic and fails cleanly.
	if h.read64(p, offMagic) == poolMagic {
		if err := h.rebuildAllocState(p); err != nil {
			_ = h.discardPool(p)
			return nil, err
		}
	}
	return p, nil
}

func (h *Heap) unmapPool(p *Pool) error {
	// A clean unmap flushes the mapped bytes back to the durable store
	// (the OS writes dirty pages back on munmap of a file mapping).
	if err := h.AS.ReadAt(p.region.Base, p.b.data); err != nil {
		return err
	}
	return h.discardPool(p)
}

// discardPool unmaps a pool without writing the cache view back: whatever
// the durable bytes hold at this point is what survives.
func (h *Heap) discardPool(p *Pool) error {
	if err := h.AS.Unmap(p.region); err != nil {
		return err
	}
	p.b.open = false
	delete(h.open, p.b.id)
	if p.b.parityBytes != 0 {
		h.ftPools--
	}
	h.NV.DropPool(uint32(p.b.id))
	h.clwbPool = nil
	if h.Soft != nil {
		if err := h.Soft.Unregister(p.b.id); err != nil {
			return err
		}
	}
	if h.POT != nil {
		if err := h.POT.Remove(p.b.id); err != nil {
			return err
		}
	}
	if h.HW != nil {
		h.HW.InvalidatePool(p.b.id)
	}
	return nil
}

// SyncPool flushes a pool's entire cache view to the durable store (the
// msync analogue): after it returns, cache and durable views agree and no
// line of the pool is volatile. Bulk setup phases (pool creation, database
// population) end with a SyncPool, so the crash engine's adversary only
// operates on the stores made after it.
func (h *Heap) SyncPool(p *Pool) error {
	if err := h.AS.ReadAt(p.region.Base, p.b.data); err != nil {
		return err
	}
	h.NV.Clean(uint32(p.b.id))
	return nil
}

// SyncAll is SyncPool over every open pool, in pool-id order so the
// instruction/event stream stays deterministic.
func (h *Heap) SyncAll() error {
	ids := make([]oid.PoolID, 0, len(h.open))
	for id := range h.open {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	for _, id := range ids {
		if err := h.SyncPool(h.open[id]); err != nil {
			return err
		}
	}
	return nil
}

// Close unmaps the pool and withdraws its translations (paper: pool_close).
func (h *Heap) Close(p *Pool) error {
	if h.poolBusy(p) {
		return fmt.Errorf("pmem: pool %q has an active transaction", p.b.name)
	}
	h.Emit.Compute(openCost / 2)
	return h.unmapPool(p)
}

// Crash simulates losing power. What a fence made durable is durable; the
// fate of every other volatile line is decided by the adversarial policy
// (see nvmsim): dropped, kept (a cache eviction that happened to complete),
// or torn at 8-byte granularity. All process state — open handles,
// transactions, translations — is lost. Reopen the pool and call Recover
// to restore consistency. The report records the exact survivor set so the
// outcome can be replayed with an Explicit policy.
func (h *Heap) Crash(pol nvmsim.Policy) (nvmsim.Report, error) {
	rep := h.NV.Crash(pol, h)
	for _, p := range h.open {
		if err := h.discardPool(p); err != nil {
			return rep, err
		}
	}
	h.dropAllTxs()
	h.resetGroupCommit()
	if h.mvcc != nil {
		// The version mirror is volatile: the crash takes it with the
		// machine. The store reseeds it from recovered bytes at remount.
		h.mvcc.Reset()
	}
	return rep, nil
}

// resetGroupCommit clears the group-commit coordinator across a simulated
// power cycle: the goroutines that died with the machine took their batch
// with them, and the rebooted process starts with a live fence path.
func (h *Heap) resetGroupCommit() {
	gc := &h.gc
	gc.mu.Lock()
	gc.collecting = false
	gc.fencing = false
	gc.waiters = 0
	gc.dead = false
	if gc.cond != nil {
		gc.cond.Broadcast()
	}
	gc.mu.Unlock()
}

// CrashClean simulates the gentlest possible failure: the machine stops,
// but every volatile line happens to have been written back first — the
// durable image equals the cache view, exactly as if the caches were
// flushed at the instant of death. Process state is still lost, so an
// interrupted transaction's undo log remains live and must be recovered.
// The recovery-cost experiment uses this to measure log replay in
// isolation from line loss.
func (h *Heap) CrashClean() error {
	for _, p := range h.open {
		if err := h.unmapPool(p); err != nil {
			return err
		}
	}
	h.dropAllTxs()
	h.resetGroupCommit()
	if h.mvcc != nil {
		h.mvcc.Reset()
	}
	return nil
}

// Pool returns the open pool with the given id.
func (h *Heap) Pool(id oid.PoolID) (*Pool, bool) {
	p, ok := h.open[id]
	return p, ok
}

// OpenPools returns the number of currently open pools.
func (h *Heap) OpenPools() int { return len(h.open) }

// vaOf resolves an ObjectID to its current virtual address (functional; no
// emission).
func (h *Heap) vaOf(o oid.OID) (uint64, error) {
	p, ok := h.open[o.Pool()]
	if !ok {
		return 0, fmt.Errorf("pmem: pool %d not open for %v", o.Pool(), o)
	}
	return p.region.Base + uint64(o.Offset()), nil
}

// --- direct byte access helpers (functional, no emission) ---

func (h *Heap) read64(p *Pool, off uint32) uint64 {
	v, err := h.AS.Read64(p.region.Base + uint64(off))
	if err != nil {
		panic(fmt.Sprintf("pmem: pool %q header unmapped: %v", p.b.name, err))
	}
	return v
}

func (h *Heap) mustWrite64(p *Pool, off uint32, v uint64) {
	h.nvStore(uint32(p.b.id), off, 8)
	if err := h.AS.Write64(p.region.Base+uint64(off), v); err != nil {
		panic(fmt.Sprintf("pmem: pool %q header unmapped: %v", p.b.name, err))
	}
}

// nvStore feeds one store event into the persistence domain, serialized in
// concurrent mode. The deferred unlock matters: an armed domain crashes by
// panicking mid-event, and the lock must not stay held while the signal
// unwinds through a worker.
func (h *Heap) nvStore(pool, off, size uint32) {
	if h.concurrent {
		h.nvMu.Lock()
		defer h.nvMu.Unlock()
	}
	h.NV.Store(pool, off, size)
}

// --- persistence-domain plumbing (nvmsim.Memory + emit.PersistObserver) ---

// poolOf resolves a virtual address to the open pool containing it.
func (h *Heap) poolOf(va uint64) *Pool {
	if !h.concurrent {
		if p := h.clwbPool; p != nil && p.b.open &&
			va >= p.region.Base && va < p.region.Base+p.b.size {
			return p
		}
	}
	for _, p := range h.open {
		if va >= p.region.Base && va < p.region.Base+p.b.size {
			if !h.concurrent {
				h.clwbPool = p
			}
			return p
		}
	}
	return nil
}

// ObserveCLWB feeds every emitted cache-line write-back into the volatile
// write-back model (emit.PersistObserver).
func (h *Heap) ObserveCLWB(va uint64) {
	if p := h.poolOf(va); p != nil {
		if h.concurrent {
			h.nvMu.Lock()
			defer h.nvMu.Unlock()
		}
		h.NV.CLWB(uint32(p.b.id), uint32(va-p.region.Base), h)
	}
}

// ObserveSFence drains every in-flight line to the durable store
// (emit.PersistObserver).
func (h *Heap) ObserveSFence() {
	if h.concurrent {
		h.nvMu.Lock()
		defer h.nvMu.Unlock()
	}
	h.NV.SFence(h)
}

// ReadCacheLine copies a line's current mapped (cache-view) content
// (nvmsim.Memory).
func (h *Heap) ReadCacheLine(pool, off uint32, dst *[nvmsim.LineBytes]byte) bool {
	p, ok := h.open[oid.PoolID(pool)]
	if !ok {
		return false
	}
	return h.AS.ReadAt(p.region.Base+uint64(off), dst[:]) == nil
}

// WriteDurableWords writes the selected 8-byte words of a line into the
// pool's durable backing bytes (nvmsim.Memory).
func (h *Heap) WriteDurableWords(pool, off uint32, src *[nvmsim.LineBytes]byte, mask byte) {
	p, ok := h.open[oid.PoolID(pool)]
	if !ok {
		return
	}
	for w := 0; w < nvmsim.LineBytes/8; w++ {
		if mask&(1<<w) != 0 {
			copy(p.b.data[int(off)+w*8:int(off)+w*8+8], src[w*8:(w+1)*8])
		}
	}
}

// ReadDurableLine copies a line's durable backing content (nvmsim.Memory);
// the media-fault injector flips bits in what it reads here.
func (h *Heap) ReadDurableLine(pool, off uint32, dst *[nvmsim.LineBytes]byte) bool {
	p, ok := h.open[oid.PoolID(pool)]
	if !ok || int(off)+nvmsim.LineBytes > len(p.b.data) {
		return false
	}
	copy(dst[:], p.b.data[off:int(off)+nvmsim.LineBytes])
	return true
}

// WriteCacheLine overwrites a line's mapped cache-view content
// (nvmsim.Memory); the media-fault injector uses it to make a flip in a
// clean line visible to the running program, modelling a load that
// refilled the line from the corrupted media.
func (h *Heap) WriteCacheLine(pool, off uint32, src *[nvmsim.LineBytes]byte) bool {
	p, ok := h.open[oid.PoolID(pool)]
	if !ok {
		return false
	}
	return h.AS.WriteAt(p.region.Base+uint64(off), src[:]) == nil
}

// Word is a 64-bit value loaded from persistent memory together with the
// register that holds it, so later emitted instructions can depend on it.
type Word struct {
	Reg isa.Reg
	V   uint64
}

// OID interprets the word as an ObjectID.
func (w Word) OID() oid.OID { return oid.OID(w.V) }

// Ref is a dereferenced persistent object: the result of translating an
// ObjectID once and then accessing fields relative to it, mirroring the
// paper's `temp = oid_direct(new_oid); temp->value = ...; temp->next = ...`
// idiom. In BASE mode constructing a Ref emits one oid_direct call; in OPT
// mode it is free because every field access is its own nvld/nvst.
type Ref struct {
	h   *Heap
	oid oid.OID
	va  uint64
	// reg holds the translated address (BASE) or the ObjectID (OPT);
	// field accesses depend on it.
	reg isa.Reg
	// direct marks a library-internal reference that accesses memory
	// through a cached virtual pointer in both modes (see DirectRef).
	direct bool
}

// DirectRef returns a reference that always compiles to regular loads and
// stores on the pool's mapped virtual addresses, in both BASE and OPT
// modes. It models how the library accesses its *own* metadata — the
// allocator header, block headers and the undo log — through direct
// pointers cached when the pool was opened (exactly as libpmemobj does);
// only API-level object references pay ObjectID translation.
func (h *Heap) DirectRef(p *Pool, off uint32) Ref {
	return Ref{h: h, oid: p.OID(off), va: p.region.Base + uint64(off), direct: true}
}

// useVA reports whether the reference compiles to regular virtual-address
// accesses (BASE or FIXED mode, or a direct library-internal reference).
func (r Ref) useVA() bool { return r.direct || r.h.Emit.Mode() != emit.Opt }

// Deref translates an ObjectID for subsequent field accesses. oidReg is the
// register holding the ObjectID value (isa.RZ if it came from an immediate).
func (h *Heap) Deref(o oid.OID, oidReg isa.Reg) (Ref, error) {
	va, err := h.vaOf(o)
	if err != nil {
		return Ref{}, err
	}
	if h.verifyOnRead {
		if err := h.verifyOnDeref(o); err != nil {
			return Ref{}, err
		}
	}
	if h.Emit.Mode() == emit.Base {
		vaReg, va2, err := h.Soft.Translate(oidReg, o)
		if err != nil {
			return Ref{}, err
		}
		if va2 != va {
			return Ref{}, fmt.Errorf("pmem: translation mismatch for %v: %#x vs %#x", o, va, va2)
		}
		return Ref{h: h, oid: o, va: va, reg: vaReg}, nil
	}
	return Ref{h: h, oid: o, va: va, reg: oidReg}, nil
}

// OID returns the ObjectID the Ref was created from.
func (r Ref) OID() oid.OID { return r.oid }

// Load64 reads the 8-byte field at byte offset off.
func (r Ref) Load64(off uint32) (Word, error) {
	v, err := r.h.AS.Read64(r.va + uint64(off))
	if err != nil {
		return Word{}, fmt.Errorf("pmem: load %v+%d: %w", r.oid, off, err)
	}
	dst := r.h.Emit.Temp()
	if r.useVA() {
		r.h.Emit.Load(dst, r.reg, r.va+uint64(off), 8)
	} else {
		r.h.Emit.NVLoad(dst, r.reg, r.oid.FieldAt(off), 8)
	}
	return Word{Reg: dst, V: v}, nil
}

// Store64 writes the 8-byte field at byte offset off. dep is the register
// the stored value was computed in (isa.RZ for immediates).
func (r Ref) Store64(off uint32, v uint64, dep isa.Reg) error {
	r.h.nvStore(uint32(r.oid.Pool()), r.oid.Offset()+off, 8)
	if err := r.h.AS.Write64(r.va+uint64(off), v); err != nil {
		return fmt.Errorf("pmem: store %v+%d: %w", r.oid, off, err)
	}
	if r.useVA() {
		r.h.Emit.Store(r.reg, r.va+uint64(off), 8, dep)
	} else {
		r.h.Emit.NVStore(r.reg, r.oid.FieldAt(off), 8, dep)
	}
	return nil
}

// ReadBytes reads len(b) bytes starting at off, emitting one load per
// 8-byte word.
func (r Ref) ReadBytes(off uint32, b []byte) error {
	if err := r.h.AS.ReadAt(r.va+uint64(off), b); err != nil {
		return fmt.Errorf("pmem: read %v+%d: %w", r.oid, off, err)
	}
	for w := uint32(0); w < uint32(len(b)); w += 8 {
		dst := r.h.Emit.Temp()
		if r.useVA() {
			r.h.Emit.Load(dst, r.reg, r.va+uint64(off+w), 8)
		} else {
			r.h.Emit.NVLoad(dst, r.reg, r.oid.FieldAt(off+w), 8)
		}
	}
	return nil
}

// WriteBytes writes b starting at off, emitting one store per 8-byte word.
// Each word is written (and becomes a crash-point event) individually, so
// a crash can land between any two words of the range.
func (r Ref) WriteBytes(off uint32, b []byte) error {
	for w := uint32(0); w < uint32(len(b)); w += 8 {
		n := uint32(len(b)) - w
		if n > 8 {
			n = 8
		}
		r.h.nvStore(uint32(r.oid.Pool()), r.oid.Offset()+off+w, n)
		if err := r.h.AS.WriteAt(r.va+uint64(off+w), b[w:w+n]); err != nil {
			return fmt.Errorf("pmem: write %v+%d: %w", r.oid, off, err)
		}
		if r.useVA() {
			r.h.Emit.Store(r.reg, r.va+uint64(off+w), 8, isa.RZ)
		} else {
			r.h.Emit.NVStore(r.reg, r.oid.FieldAt(off+w), 8, isa.RZ)
		}
	}
	return nil
}

// Direct is the paper's oid_direct: it translates an ObjectID to a virtual
// address in software, emitting the Figure 3 sequence. It exists for
// BASE-mode code; OPT-mode programs dereference ObjectIDs directly.
func (h *Heap) Direct(o oid.OID) (uint64, error) {
	if h.Emit.Mode() != emit.Base {
		return 0, fmt.Errorf("pmem: Direct called in OPT mode; dereference the ObjectID instead")
	}
	_, va, err := h.Soft.Translate(isa.RZ, o)
	return va, err
}

// Persist makes [o, o+size) durable (paper: persist): one CLWB per cache
// line followed by an SFENCE.
func (h *Heap) Persist(o oid.OID, size uint32) error {
	if err := h.persistNoFence(o, size); err != nil {
		return err
	}
	h.fence()
	atomic.AddUint64(&h.Metrics.Persists, 1)
	return nil
}

// persistNoFence emits the CLWBs for a range without the trailing fence so
// that batched persists (transaction commit) can share one SFENCE.
func (h *Heap) persistNoFence(o oid.OID, size uint32) error {
	va, err := h.vaOf(o)
	if err != nil {
		return err
	}
	if size == 0 {
		return nil
	}
	if h.concurrent && h.Emit.Detached() {
		// A concurrent heap runs detached (no instruction stream), so the
		// emission loop below would only relay one CLWB observation per
		// line — each resolving the pool and taking the domain lock again.
		// Hand the whole range to the write-back model in one call under a
		// single lock acquisition; CLWBRange steps event-for-event like the
		// per-line loop, so armed crash points land at the same indices.
		p := h.open[o.Pool()]
		func() {
			// The unlock must be deferred: an armed crash fires as a panic
			// from inside the range walk, and the domain lock has to be
			// released on that unwind or every surviving worker deadlocks
			// instead of observing the poisoned domain.
			h.nvMu.Lock()
			defer h.nvMu.Unlock()
			h.NV.CLWBRange(uint32(p.b.id), o.Offset(), size, h)
		}()
		return nil
	}
	first := va &^ 63
	last := (va + uint64(size) - 1) &^ 63
	h.Emit.Compute(8) // address rounding, loop setup
	for line := first; ; line += 64 {
		h.Emit.CLWB(line)
		adv := h.Emit.Compute(1) // line += 64
		h.Emit.Branch("persist.loop", line != last, adv)
		if line == last {
			break
		}
	}
	return nil
}

// Root returns the pool's root object, creating it with the given size on
// first use (paper: pool_root). The root anchors all other content.
func (h *Heap) Root(p *Pool, size uint32) (oid.OID, error) {
	hdr := h.DirectRef(p, 0)
	w, err := hdr.Load64(offRootOff)
	if err != nil {
		return oid.Null, err
	}
	if w.V != 0 {
		if got := uint32(h.read64(p, offRootSize)); got < size {
			return oid.Null, fmt.Errorf("pmem: root of pool %q is %d bytes, %d requested", p.b.name, got, size)
		}
		return p.OID(uint32(w.V)), nil
	}
	o, err := h.Alloc(p, size)
	if err != nil {
		return oid.Null, err
	}
	if err := hdr.Store64(offRootOff, uint64(o.Offset()), isa.RZ); err != nil {
		return oid.Null, err
	}
	if err := hdr.Store64(offRootSize, uint64(size), isa.RZ); err != nil {
		return oid.Null, err
	}
	if err := h.Persist(p.OID(offRootOff), 16); err != nil {
		return oid.Null, err
	}
	return o, nil
}
