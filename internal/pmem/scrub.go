package pmem

import (
	"fmt"
	"sort"
	"sync"
	"time"

	"potgo/internal/obs"
	"potgo/internal/oid"
)

// Online scrubbing. A Scrubber is a background goroutine that walks the
// heap's fault-tolerant pools one pool per tick, verifying every occupied
// slot's CRC32C and repairing what parity can reconstruct (Heap.ScrubPool).
// Each pool is scrubbed under its shard's write lock — a scrub may repair —
// and the lock is dropped between pools, so foreground operations are
// delayed by at most one pool's scan per tick.
//
// Structural operations (create/open/close/crash/recover/sync) are
// stop-the-world and must not interleave with a scrub chunk: they pause
// the scrubber first (Sharded.stopTheWorld), which waits for any in-flight
// chunk to release its locks, and resume it after. Crash in particular
// poisons the persistence domain, and a scrub repair in flight would step
// on the poisoned event stream.

// Scrubber is a background media scrubber over a Sharded heap's
// fault-tolerant pools.
type Scrubber struct {
	s        *Sharded
	interval time.Duration

	repaired     *obs.Counter
	unrepairable *obs.Counter

	mu      sync.Mutex
	cond    *sync.Cond
	paused  int
	inChunk bool
	stopped bool
	stats   ScrubStats
	passes  int
	next    int // round-robin cursor over the FT pool ids

	quit chan struct{}
	done chan struct{}
}

// StartScrubber launches the heap's background scrubber, scanning one
// fault-tolerant pool every interval. Counters scrub.repaired and
// scrub.unrepairable are registered on reg (which may be nil to skip
// metrics). There is at most one scrubber per Sharded heap.
func (s *Sharded) StartScrubber(interval time.Duration, reg *obs.Registry) (*Scrubber, error) {
	if interval <= 0 {
		return nil, fmt.Errorf("pmem: scrub interval must be positive, got %v", interval)
	}
	s.scrubMu.Lock()
	defer s.scrubMu.Unlock()
	if s.scrub != nil {
		return nil, fmt.Errorf("pmem: scrubber already running")
	}
	sc := &Scrubber{
		s:        s,
		interval: interval,
		quit:     make(chan struct{}),
		done:     make(chan struct{}),
	}
	sc.cond = sync.NewCond(&sc.mu)
	if reg != nil {
		sc.repaired = reg.Counter("scrub.repaired")
		sc.unrepairable = reg.Counter("scrub.unrepairable")
	}
	s.scrub = sc
	go sc.loop()
	return sc, nil
}

// Stop halts the scrubber and waits for its goroutine to exit. The heap
// can start a new one afterwards.
func (sc *Scrubber) Stop() {
	sc.mu.Lock()
	if !sc.stopped {
		sc.stopped = true
		close(sc.quit)
	}
	sc.cond.Broadcast()
	sc.mu.Unlock()
	<-sc.done
	sc.s.scrubMu.Lock()
	if sc.s.scrub == sc {
		sc.s.scrub = nil
	}
	sc.s.scrubMu.Unlock()
}

// Stats returns the totals accumulated since the scrubber started, plus
// the number of complete passes over the pool set.
func (sc *Scrubber) Stats() (ScrubStats, int) {
	sc.mu.Lock()
	defer sc.mu.Unlock()
	return sc.stats, sc.passes
}

// pause blocks new chunks and waits for an in-flight one to finish (and
// release its shard lock). Pauses nest.
func (sc *Scrubber) pause() {
	sc.mu.Lock()
	sc.paused++
	for sc.inChunk {
		sc.cond.Wait()
	}
	sc.mu.Unlock()
}

// resume undoes one pause.
func (sc *Scrubber) resume() {
	sc.mu.Lock()
	sc.paused--
	sc.cond.Broadcast()
	sc.mu.Unlock()
}

// enterChunk waits until the scrubber may run a chunk; it reports false
// when the scrubber was stopped instead.
func (sc *Scrubber) enterChunk() bool {
	sc.mu.Lock()
	defer sc.mu.Unlock()
	for sc.paused > 0 && !sc.stopped {
		sc.cond.Wait()
	}
	if sc.stopped {
		return false
	}
	sc.inChunk = true
	return true
}

func (sc *Scrubber) exitChunk(st ScrubStats, wrapped bool) {
	sc.mu.Lock()
	sc.inChunk = false
	sc.stats.Add(st)
	if wrapped {
		sc.passes++
	}
	sc.cond.Broadcast()
	sc.mu.Unlock()
	if sc.repaired != nil {
		sc.repaired.Add(uint64(st.Repaired + st.ParityRepaired))
	}
	if sc.unrepairable != nil {
		sc.unrepairable.Add(uint64(st.Unrepairable))
	}
}

func (sc *Scrubber) loop() {
	defer close(sc.done)
	tick := time.NewTicker(sc.interval)
	defer tick.Stop()
	for {
		select {
		case <-sc.quit:
			return
		case <-tick.C:
		}
		if !sc.enterChunk() {
			return
		}
		st, wrapped := sc.scrubNext()
		sc.exitChunk(st, wrapped)
	}
}

// scrubNext scrubs the next fault-tolerant pool in round-robin order,
// under its shard's write lock. It reports whether the cursor wrapped
// (one full pass complete). Pool ids — not pointers — are resolved fresh
// under the lock, so pools closed since the last tick are skipped.
func (sc *Scrubber) scrubNext() (ScrubStats, bool) {
	s := sc.s
	ids := s.ftPoolIDs()
	if len(ids) == 0 {
		return ScrubStats{}, false
	}
	sc.mu.Lock()
	cursor := sc.next % len(ids)
	sc.next = cursor + 1
	wrapped := sc.next == len(ids)
	sc.mu.Unlock()
	id := ids[cursor]
	s.LockPool(id)
	defer s.UnlockPool(id)
	p, ok := s.h.open[id]
	if !ok || !p.ft() {
		return ScrubStats{}, wrapped
	}
	st, err := s.h.ScrubPool(p)
	if err != nil {
		// A scrub never fails on corrupt data (that's Unrepairable); an
		// error means the pool went away mid-scan. Count nothing.
		return ScrubStats{}, wrapped
	}
	return st, wrapped
}

// ftPoolIDs snapshots the ids of the open fault-tolerant pools in sorted
// order, under a read lock of all shards.
func (s *Sharded) ftPoolIDs() []oid.PoolID {
	s.RLockAll()
	ids := make([]oid.PoolID, 0, s.h.ftPools)
	for id, p := range s.h.open {
		if p.ft() {
			ids = append(ids, id)
		}
	}
	s.RUnlockAll()
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	return ids
}

// --- stop-the-world fault-tolerance entry points ---

// CreateFT makes a fault-tolerant pool (checksums + parity column).
func (s *Sharded) CreateFT(name string, size uint64) (*Pool, error) {
	defer s.stopTheWorld()()
	return s.h.CreateFT(name, size)
}

// CreateSizedFT is CreateFT with an explicit undo-log capacity.
func (s *Sharded) CreateSizedFT(name string, size, logBytes uint64) (*Pool, error) {
	defer s.stopTheWorld()()
	return s.h.CreateSizedFT(name, size, logBytes)
}

// RebuildFT recomputes a pool's checksum and parity state after
// non-transactional setup (see Heap.RebuildFT).
func (s *Sharded) RebuildFT(p *Pool) error {
	defer s.stopTheWorld()()
	return s.h.RebuildFT(p)
}

// ScrubAll synchronously scrubs every fault-tolerant pool once,
// accumulating the stats. Each pool is scrubbed under its shard's write
// lock; the background scrubber (if any) keeps running around it.
func (s *Sharded) ScrubAll() (ScrubStats, error) {
	var total ScrubStats
	for _, id := range s.ftPoolIDs() {
		// The unlock is deferred inside the closure so an armed-crash
		// signal unwinding out of ScrubPool (the crash-mid-scrub
		// campaign) releases the shard lock on its way up.
		st, err := func() (ScrubStats, error) {
			s.LockPool(id)
			defer s.UnlockPool(id)
			p, ok := s.h.open[id]
			if !ok || !p.ft() {
				return ScrubStats{}, nil
			}
			return s.h.ScrubPool(p)
		}()
		if err != nil {
			return total, err
		}
		total.Add(st)
	}
	return total, nil
}

// CorruptObjects injects k single-bit media faults (see
// Heap.CorruptObjects), stop-the-world so no transaction or scrub chunk
// is in flight when the bits land.
func (s *Sharded) CorruptObjects(k int, mode CorruptMode, seed uint64) ([]Corruption, error) {
	defer s.stopTheWorld()()
	return s.h.CorruptObjects(k, mode, seed)
}

// SetVerifyOnRead toggles checksum verification on Deref (stop-the-world:
// the flag is read unsynchronized on the hot path).
func (s *Sharded) SetVerifyOnRead(on bool) {
	defer s.stopTheWorld()()
	s.h.SetVerifyOnRead(on)
}

// MutateNoParity disables parity maintenance (the CI mutation check).
func (s *Sharded) MutateNoParity(on bool) {
	defer s.stopTheWorld()()
	s.h.MutateNoParity(on)
}

// RepairObject verifies and repairs one object under its pool's shard
// write lock.
func (s *Sharded) RepairObject(o oid.OID) (bool, error) {
	s.LockPool(o.Pool())
	defer s.UnlockPool(o.Pool())
	return s.h.RepairObject(o)
}

// stopTheWorld pauses the background scrubber (waiting out any in-flight
// chunk) and then write-locks every shard. The returned func undoes both.
func (s *Sharded) stopTheWorld() func() {
	s.scrubMu.Lock()
	sc := s.scrub
	s.scrubMu.Unlock()
	if sc != nil {
		sc.pause()
	}
	unlock := s.lockAll()
	return func() {
		unlock()
		if sc != nil {
			sc.resume()
		}
	}
}
