package pmem

import (
	"sync"
	"testing"
	"time"

	"potgo/internal/isa"
	"potgo/internal/obs"
	"potgo/internal/oid"
	"potgo/internal/randtest"
)

// shardedFTPool creates a fault-tolerant pool on a sharded heap and fills
// it with n committed objects.
func shardedFTPool(t *testing.T, s *Sharded, name string, n int) (*Pool, []oid.OID) {
	t.Helper()
	p, err := s.CreateSizedFT(name, 1<<20, DefaultLogBytes)
	if err != nil {
		t.Fatal(err)
	}
	objs := make([]oid.OID, n)
	for i := range objs {
		err := s.Tx(p, nil, func(tx *Tx) error {
			o, err := tx.Alloc(p, 256)
			if err != nil {
				return err
			}
			ref, err := s.h.Deref(o, isa.RZ)
			if err != nil {
				return err
			}
			for off := uint32(0); off < 256; off += 8 {
				if err := ref.Store64(off, uint64(i)<<16|uint64(off), isa.RZ); err != nil {
					return err
				}
			}
			objs[i] = o
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}
	}
	return p, objs
}

func TestScrubberRepairsInBackground(t *testing.T) {
	s := newTestSharded(t, 4)
	_, _ = shardedFTPool(t, s, "ft", 32)
	if err := s.SyncAll(); err != nil {
		t.Fatal(err)
	}
	seed := uint64(randtest.Seed(t, 61))
	t.Logf("corruption seed %d", seed)
	faults, err := s.CorruptObjects(3, CorruptDetect, seed)
	if err != nil {
		t.Fatal(err)
	}
	reg := obs.NewRegistry()
	sc, err := s.StartScrubber(200*time.Microsecond, reg)
	if err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(10 * time.Second)
	for {
		st, passes := sc.Stats()
		if st.Unrepairable > 0 {
			t.Fatalf("background scrub: %+v", st)
		}
		if st.Repaired >= len(faults) && passes >= 1 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("scrubber did not repair %d faults in time: %+v", len(faults), st)
		}
		time.Sleep(time.Millisecond)
	}
	sc.Stop()
	if got := reg.Counter("scrub.repaired").Value(); got < uint64(len(faults)) {
		t.Fatalf("scrub.repaired = %d, want >= %d", got, len(faults))
	}
	if got := reg.Counter("scrub.unrepairable").Value(); got != 0 {
		t.Fatalf("scrub.unrepairable = %d, want 0", got)
	}
	// Everything verifies now.
	s.SetVerifyOnRead(true)
	st, err := s.ScrubAll()
	if err != nil {
		t.Fatal(err)
	}
	if st.Repaired != 0 || st.Unrepairable != 0 || st.ParityRepaired != 0 {
		t.Fatalf("post-repair scrub = %+v, want clean", st)
	}
}

// TestScrubberStructuralInterleave races the background scrubber against
// foreground transactions and stop-the-world structural operations; run
// under -race this is the pause-protocol regression test.
func TestScrubberStructuralInterleave(t *testing.T) {
	s := newTestSharded(t, 4)
	p, objs := shardedFTPool(t, s, "ft", 16)
	sc, err := s.StartScrubber(100*time.Microsecond, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer sc.Stop()

	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			o := objs[i%len(objs)]
			err := s.Tx(p, nil, func(tx *Tx) error {
				if err := tx.AddRange(o, 8); err != nil {
					return err
				}
				ref, err := s.h.Deref(o, isa.RZ)
				if err != nil {
					return err
				}
				return ref.Store64(0, uint64(i), isa.RZ)
			})
			if err != nil {
				t.Errorf("tx: %v", err)
				return
			}
		}
	}()

	// Structural churn: creates, closes, syncs and synchronous scrubs,
	// each pausing the background scrubber around its all-shard lock.
	for i := 0; i < 20; i++ {
		q, err := s.CreateSizedFT("churn", 1<<18, DefaultLogBytes)
		if err != nil {
			t.Fatal(err)
		}
		if err := s.SyncAll(); err != nil {
			t.Fatal(err)
		}
		if _, err := s.ScrubAll(); err != nil {
			t.Fatal(err)
		}
		if err := s.Close(q); err != nil {
			t.Fatal(err)
		}
		if err := s.Heap().Store.Delete("churn"); err != nil {
			t.Fatal(err)
		}
	}
	close(stop)
	wg.Wait()
}
