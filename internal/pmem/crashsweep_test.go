package pmem

import (
	"bytes"
	"fmt"
	"testing"

	"potgo/internal/isa"
	"potgo/internal/nvmsim"
	"potgo/internal/oid"
	"potgo/internal/vm"
)

// Instruction-granular crash sweep: unlike crashpoint_test.go, which cuts
// the scripted transaction at API-call boundaries, this sweep arms the
// nvmsim domain to crash before *every single* persistent-memory event
// (store, CLWB, SFENCE) the transaction produces, under both the drop-all
// and the torn-line adversary. After each crash a fresh process recovers
// and the durable state must be exactly the pre-transaction state or
// exactly the committed state — nothing in between survives an
// instruction-granular adversary only if every persist and fence is in
// the right place.

// sweepWorld builds the standard three-object world used by txScript with
// a durable (synced) setup phase, returning everything needed to crash and
// reattach.
func sweepWorld(t *testing.T, seed int64) (*vm.AddressSpace, *Store, *Heap, *Pool, [3]oid.OID) {
	t.Helper()
	as := vm.NewAddressSpace(seed)
	store := NewStore()
	h := freshHeap(t, as, store)
	p, err := h.Create("cp", 256*1024)
	if err != nil {
		t.Fatal(err)
	}
	var objs [3]oid.OID
	for i := range objs {
		if objs[i], err = h.Alloc(p, 16); err != nil {
			t.Fatal(err)
		}
		ref, err := h.Deref(objs[i], isa.RZ)
		if err != nil {
			t.Fatal(err)
		}
		if err := ref.Store64(0, uint64(100+i), isa.RZ); err != nil {
			t.Fatal(err)
		}
		if err := ref.Store64(8, uint64(200+i), isa.RZ); err != nil {
			t.Fatal(err)
		}
	}
	if err := h.SyncPool(p); err != nil {
		t.Fatal(err)
	}
	return as, store, h, p, objs
}

// runArmed runs fn with the domain armed at event `at` and reports whether
// the crash fired.
func runArmed(h *Heap, at uint64, fn func() error) (crashed bool, err error) {
	h.NV.Arm(at)
	defer h.NV.Disarm()
	defer func() {
		if r := recover(); r != nil {
			if _, ok := nvmsim.AsCrashSignal(r); !ok {
				panic(r)
			}
			crashed = true
		}
	}()
	return false, fn()
}

// checkSweepOutcome asserts the recovered heap holds exactly the
// pre-transaction or exactly the committed state of txScript.
func checkSweepOutcome(label string, h *Heap, p *Pool, objs [3]oid.OID) error {
	read := func(o oid.OID, off uint32) uint64 {
		ref, err := h.Deref(o, isa.RZ)
		if err != nil {
			panic(err)
		}
		w, err := ref.Load64(off)
		if err != nil {
			panic(err)
		}
		return w.V
	}
	a0, a8 := read(objs[0], 0), read(objs[0], 8)
	b0, b8 := read(objs[1], 0), read(objs[1], 8)
	switch {
	case a0 == 100 && a8 == 200:
		// Pre-state: the whole transaction must have vanished.
		if b0 != 101 || b8 != 201 {
			return fmt.Errorf("%s: torn atomicity: objs[0] rolled back but objs[1] = (%d,%d)", label, b0, b8)
		}
		if c0, c8 := read(objs[2], 0), read(objs[2], 8); c0 != 102 || c8 != 202 {
			return fmt.Errorf("%s: uncommitted free touched the victim: (%d,%d)", label, c0, c8)
		}
		// The free intent must not have leaked onto the free list.
		o, err := h.Alloc(p, 16)
		if err != nil {
			return err
		}
		if o == objs[2] {
			return fmt.Errorf("%s: uncommitted free was applied", label)
		}
	case a0 == 1111 && a8 == 3333:
		// Committed state: every effect must be present.
		if b0 != 101 || b8 != 2222 {
			return fmt.Errorf("%s: committed tx half-applied: objs[1] = (%d,%d)", label, b0, b8)
		}
		// The committed free is durable: the block comes back first.
		o, err := h.Alloc(p, 16)
		if err != nil {
			return err
		}
		if o != objs[2] {
			return fmt.Errorf("%s: committed free lost: alloc = %v, want %v", label, o, objs[2])
		}
	default:
		return fmt.Errorf("%s: objs[0] = (%d,%d): neither pre (100,200) nor committed (1111,3333) state", label, a0, a8)
	}
	return nil
}

func TestExhaustiveEventSweep(t *testing.T) {
	// Dry run: find the event span of the scripted transaction.
	_, _, h, p, objs := sweepWorld(t, 42)
	e0 := h.NV.Events()
	if _, err := txScript(h, p, objs, -1); err != nil {
		t.Fatal(err)
	}
	e1 := h.NV.Events()
	if e1-e0 < 50 {
		t.Fatalf("suspiciously short event span %d..%d", e0, e1)
	}

	for _, kind := range []nvmsim.Kind{nvmsim.DropAll, nvmsim.Torn} {
		for e := e0; e < e1; e++ {
			label := fmt.Sprintf("%v@%d", kind, e)
			as, store, h, p, objs := sweepWorld(t, 42)
			pol := nvmsim.DropAllPolicy()
			if kind == nvmsim.Torn {
				pol = nvmsim.TornPolicy(e) // a fresh tear pattern per point
			}
			crashed, err := runArmed(h, e, func() error {
				_, err := txScript(h, p, objs, -1)
				return err
			})
			if err != nil {
				t.Fatalf("%s: %v", label, err)
			}
			if !crashed {
				t.Fatalf("%s: armed event never reached (span drifted?)", label)
			}
			rep, err := h.Crash(pol)
			if err != nil {
				t.Fatal(err)
			}

			h2 := freshHeap(t, as, store)
			p2, err := h2.Open("cp")
			if err != nil {
				t.Fatal(err)
			}
			if err := h2.Recover(p2); err != nil {
				t.Fatalf("%s (kept %s): recover: %v", label, rep.KeptString(), err)
			}
			if h2.NeedsRecovery(p2) {
				t.Fatalf("%s: pool still dirty after recovery", label)
			}
			if err := h2.CheckPool(p2); err != nil {
				t.Fatalf("%s (kept %s): %v", label, rep.KeptString(), err)
			}
			if err := checkSweepOutcome(label, h2, p2, objs); err != nil {
				t.Errorf("%v (kept %s)", err, rep.KeptString())
			}
		}
	}
}

// durableSnapshot copies the pool's durable backing bytes (only valid when
// no process has it mapped, i.e. right after a crash).
func durableSnapshot(t *testing.T, store *Store, name string) []byte {
	t.Helper()
	b, err := store.lookup(name)
	if err != nil {
		t.Fatal(err)
	}
	return append([]byte(nil), b.data...)
}

// TestRecoverIdempotence: recovery must converge to the same durable bytes
// whether it runs once, twice, or is itself interrupted by a crash at any
// event and re-run. Without this, a second power loss during recovery —
// the common case in a crashing machine — could corrupt what the first
// recovery was about to repair.
func TestRecoverIdempotence(t *testing.T) {
	// Dry run: event span of the transaction script.
	_, _, hd, pd, objsd := sweepWorld(t, 42)
	e0 := hd.NV.Events()
	if _, err := txScript(hd, pd, objsd, -1); err != nil {
		t.Fatal(err)
	}
	e1 := hd.NV.Events()

	// Sample outer crash points across the span (the exhaustive sweep
	// already covers single-crash outcomes; here each outer point fans out
	// into an inner sweep over the recovery itself).
	for e := e0; e < e1; e += 5 {
		// First run: crash the transaction at e under the torn adversary
		// and record the exact survivor set for deterministic replay.
		as, store, h, p, objs := sweepWorld(t, 42)
		crashed, err := runArmed(h, e, func() error {
			_, err := txScript(h, p, objs, -1)
			return err
		})
		if err != nil || !crashed {
			t.Fatalf("outer@%d: crashed=%v err=%v", e, crashed, err)
		}
		rep, err := h.Crash(nvmsim.TornPolicy(e))
		if err != nil {
			t.Fatal(err)
		}
		replay := rep.Explicit()

		// Path A: recover to completion, then lose power again with
		// nothing kept. If recovery persisted everything it wrote, the
		// drop-all crash changes nothing.
		hA := freshHeap(t, as, store)
		pA, err := hA.Open("cp")
		if err != nil {
			t.Fatal(err)
		}
		baseEv := hA.NV.Events()
		if err := hA.Recover(pA); err != nil {
			t.Fatalf("outer@%d: recover: %v", e, err)
		}
		recEvents := hA.NV.Events() - baseEv
		// Recover again: must be a no-op.
		if err := hA.Recover(pA); err != nil {
			t.Fatalf("outer@%d: second recover: %v", e, err)
		}
		if _, err := hA.Crash(nvmsim.DropAllPolicy()); err != nil {
			t.Fatal(err)
		}
		want := durableSnapshot(t, store, "cp")

		// Path B: same crashed image, but recovery is itself cut short at
		// every event, crashed drop-all, and re-run. The second recovery
		// must land on byte-identical durable state.
		for k := uint64(0); k < recEvents; k++ {
			asB, storeB, hB, pB, objsB := sweepWorld(t, 42)
			crashed, err := runArmed(hB, e, func() error {
				_, err := txScript(hB, pB, objsB, -1)
				return err
			})
			if err != nil || !crashed {
				t.Fatalf("outer@%d replay: crashed=%v err=%v", e, crashed, err)
			}
			if _, err := hB.Crash(replay); err != nil {
				t.Fatal(err)
			}

			h1 := freshHeap(t, asB, storeB)
			p1, err := h1.Open("cp")
			if err != nil {
				t.Fatal(err)
			}
			crashed, err = runArmed(h1, h1.NV.Events()+k, func() error {
				return h1.Recover(p1)
			})
			if err != nil {
				t.Fatalf("outer@%d inner@%d: recover: %v", e, k, err)
			}
			_ = crashed // k == recEvents-boundary may complete; either way is fine
			if _, err := h1.Crash(nvmsim.DropAllPolicy()); err != nil {
				t.Fatal(err)
			}

			h2 := freshHeap(t, asB, storeB)
			p2, err := h2.Open("cp")
			if err != nil {
				t.Fatal(err)
			}
			if err := h2.Recover(p2); err != nil {
				t.Fatalf("outer@%d inner@%d: re-recover: %v", e, k, err)
			}
			if h2.NeedsRecovery(p2) {
				t.Fatalf("outer@%d inner@%d: still dirty", e, k)
			}
			if _, err := h2.Crash(nvmsim.DropAllPolicy()); err != nil {
				t.Fatal(err)
			}
			got := durableSnapshot(t, storeB, "cp")
			if !bytes.Equal(want, got) {
				t.Fatalf("outer@%d inner@%d: interrupted recovery diverged from clean recovery (kept %s)",
					e, k, rep.KeptString())
			}
		}
	}
}
