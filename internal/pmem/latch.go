package pmem

import (
	"sort"
	"sync"

	"potgo/internal/oid"
)

// LatchTable provides per-OID latching above the shard locks: a fixed array
// of reader/writer latches that ObjectIDs hash onto. Latches give logical
// operations (one B-tree insert, one list push) structure-level mutual
// exclusion that is independent of where the structure's pools happen to
// land in the shard map — two structures sharing a shard still serialize
// only on the shard, but a structure spanning several pools is protected as
// one unit by latching its anchor(s).
//
// Lock order is fixed: latches before shard locks, and within a latch set,
// ascending slot index (Lock/RLock sort and deduplicate internally), so no
// latch/latch or latch/shard cycle can form.
type LatchTable struct {
	mask uint64
	mus  []sync.RWMutex
}

// NewLatchTable builds a table of at least n latches (rounded up to a power
// of two).
func NewLatchTable(n int) *LatchTable {
	size := 1
	for size < n {
		size <<= 1
	}
	return &LatchTable{mask: uint64(size - 1), mus: make([]sync.RWMutex, size)}
}

// Len returns the number of latch slots.
func (lt *LatchTable) Len() int { return len(lt.mus) }

// Slot returns the latch index an OID hashes to (exported for tests and
// for deadlock-analysis tooling).
func (lt *LatchTable) Slot(o oid.OID) int {
	// splitmix64 finalizer: cheap and well distributed over both the pool
	// and offset halves of the OID.
	x := uint64(o)
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return int(x & lt.mask)
}

// slots returns the sorted, deduplicated latch indices for a set of OIDs.
func (lt *LatchTable) slots(oids []oid.OID) []int {
	idx := make([]int, 0, len(oids))
	for _, o := range oids {
		idx = append(idx, lt.Slot(o))
	}
	sort.Ints(idx)
	out := idx[:0]
	for i, s := range idx {
		if i == 0 || s != idx[i-1] {
			out = append(out, s)
		}
	}
	return out
}

// Lock write-latches every OID's slot (ascending order, duplicates
// collapsed) and returns the unlock function.
func (lt *LatchTable) Lock(oids ...oid.OID) func() {
	idx := lt.slots(oids)
	for _, s := range idx {
		lt.mus[s].Lock()
	}
	return func() {
		for i := len(idx) - 1; i >= 0; i-- {
			lt.mus[idx[i]].Unlock()
		}
	}
}

// RLock read-latches every OID's slot and returns the unlock function. Two
// OIDs hashing to one slot are latched once, so a read set can never
// self-deadlock.
func (lt *LatchTable) RLock(oids ...oid.OID) func() {
	idx := lt.slots(oids)
	for _, s := range idx {
		lt.mus[s].RLock()
	}
	return func() {
		for i := len(idx) - 1; i >= 0; i-- {
			lt.mus[idx[i]].RUnlock()
		}
	}
}
