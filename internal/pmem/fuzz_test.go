package pmem

import (
	"testing"

	"potgo/internal/isa"
	"potgo/internal/nvmsim"
	"potgo/internal/oid"
	"potgo/internal/vm"
)

// FuzzCrashRecovery drives the transactional API with an arbitrary
// byte-script, crashes it at a fuzzer-chosen persistent-memory event under
// a fuzzer-chosen adversary, recovers, and checks the allocator's
// structural invariants (CheckPool: free-list sanity, no double-threading,
// no overlap) plus basic liveness of the recovered heap. It extends the
// deterministic sweeps with coverage of multi-transaction interleavings —
// commit, abort, re-allocation of freed blocks — that the fixed scripts
// don't reach.
//
// The harness itself must use the API correctly (no double frees, no
// touching freed objects); the fuzzer explores crash timing and line loss,
// not API misuse.

// fuzzOps interprets script bytes against the heap. Returns nil on clean
// completion. The interpreter tracks object liveness so every generated
// call is legal.
func fuzzOps(h *Heap, p *Pool, setup []oid.OID, script []byte) error {
	lives := append([]oid.OID(nil), setup...)
	var txAllocs, txFrees []oid.OID
	inTx := false
	begin := func() error {
		if inTx {
			return nil
		}
		txAllocs, txFrees = nil, nil
		inTx = true
		return h.TxBegin(p)
	}
	commit := func() error {
		if !inTx {
			return nil
		}
		inTx = false
		if err := h.TxEnd(); err != nil {
			return err
		}
		freed := make(map[oid.OID]bool, len(txFrees))
		for _, o := range txFrees {
			freed[o] = true
		}
		kept := lives[:0]
		for _, o := range lives {
			if !freed[o] {
				kept = append(kept, o)
			}
		}
		lives = kept
		for _, o := range txAllocs {
			if !freed[o] {
				lives = append(lives, o)
			}
		}
		return nil
	}

	const maxOps = 16
	for i := 0; i < len(script) && i < maxOps; i++ {
		b := script[i]
		switch b % 5 {
		case 0: // transactional update of a live object
			if len(lives) == 0 {
				continue
			}
			o := lives[int(b/5)%len(lives)]
			if err := begin(); err != nil {
				return err
			}
			if err := h.TxAddRange(o, 16); err != nil {
				return err
			}
			ref, err := h.Deref(o, isa.RZ)
			if err != nil {
				return err
			}
			if err := ref.Store64(uint32(b%2)*8, uint64(b)+1, isa.RZ); err != nil {
				return err
			}
		case 1: // transactional allocation
			if err := begin(); err != nil {
				return err
			}
			size := uint32(16) << (b % 4) // 16..128
			o, err := h.TxAlloc(p, size)
			if err != nil {
				return err
			}
			txAllocs = append(txAllocs, o)
		case 2: // transactional free of a live-or-this-tx object
			pool := append(append([]oid.OID(nil), lives...), txAllocs...)
			already := make(map[oid.OID]bool, len(txFrees))
			for _, o := range txFrees {
				already[o] = true
			}
			var victim oid.OID
			for j := 0; j < len(pool); j++ {
				c := pool[(int(b/5)+j)%len(pool)]
				if !already[c] {
					victim = c
					break
				}
			}
			if victim == oid.Null {
				continue
			}
			if err := begin(); err != nil {
				return err
			}
			if err := h.TxFree(victim); err != nil {
				return err
			}
			txFrees = append(txFrees, victim)
		case 3: // commit
			if err := commit(); err != nil {
				return err
			}
		case 4: // abort (allocs rolled back, frees dropped)
			if !inTx {
				continue
			}
			inTx = false
			// The aborted allocations are dead objects; the dropped frees
			// leave their targets live.
			txAllocs, txFrees = nil, nil
			if err := h.TxAbort(); err != nil {
				return err
			}
		}
	}
	return commit()
}

func fuzzWorld(tb testing.TB) (*vm.AddressSpace, *Store, *Heap, *Pool, []oid.OID) {
	tb.Helper()
	as := vm.NewAddressSpace(1234)
	store := NewStore()
	h, err := NewHeapDiscard(as, store)
	if err != nil {
		tb.Fatal(err)
	}
	p, err := h.Create("fz", 256*1024)
	if err != nil {
		tb.Fatal(err)
	}
	setup := make([]oid.OID, 4)
	for i := range setup {
		if setup[i], err = h.Alloc(p, 16); err != nil {
			tb.Fatal(err)
		}
	}
	if err := h.SyncPool(p); err != nil {
		tb.Fatal(err)
	}
	return as, store, h, p, setup
}

func FuzzCrashRecovery(f *testing.F) {
	f.Add(uint64(0), uint64(0), []byte{0, 1, 2, 3})
	f.Add(uint64(17), uint64(1), []byte{1, 1, 3, 2, 2, 3})
	f.Add(uint64(40), uint64(2), []byte{0, 5, 10, 3, 2, 3, 1, 4})
	f.Add(uint64(93), uint64(1), []byte{2, 3, 1, 1, 4, 0, 3})
	f.Fuzz(func(t *testing.T, armChoice, polChoice uint64, script []byte) {
		// Dry run: how many events does this script produce?
		_, _, h, p, setup := fuzzWorld(t)
		base := h.NV.Events()
		if err := fuzzOps(h, p, setup, script); err != nil {
			t.Skip() // script exhausted the pool/log: not a crash-safety case
		}
		span := h.NV.Events() - base
		if span == 0 {
			t.Skip()
		}

		// Armed run on a fresh, identical world.
		as, store, h2, p2, setup2 := fuzzWorld(t)
		crashed, err := runArmedTB(h2, base+armChoice%span, func() error {
			return fuzzOps(h2, p2, setup2, script)
		})
		if err != nil {
			t.Skip()
		}
		_ = crashed
		var pol nvmsim.Policy
		switch polChoice % 3 {
		case 0:
			pol = nvmsim.DropAllPolicy()
		case 1:
			pol = nvmsim.KeepRandomPolicy(armChoice)
		case 2:
			pol = nvmsim.TornPolicy(armChoice)
		}
		rep, err := h2.Crash(pol)
		if err != nil {
			t.Fatal(err)
		}

		// Reattach, recover, and check the structural invariants.
		h3, err := NewHeapDiscard(as, store)
		if err != nil {
			t.Fatal(err)
		}
		p3, err := h3.Open("fz")
		if err != nil {
			t.Fatal(err)
		}
		if err := h3.Recover(p3); err != nil {
			t.Fatalf("recover (kept %s): %v", rep.KeptString(), err)
		}
		if h3.NeedsRecovery(p3) {
			t.Fatalf("still dirty after recovery (kept %s)", rep.KeptString())
		}
		if err := h3.CheckPool(p3); err != nil {
			t.Fatalf("after recovery (kept %s): %v", rep.KeptString(), err)
		}
		// The recovered heap is alive: fresh allocations of every class
		// work and don't collide.
		seen := make(map[oid.OID]bool)
		for _, size := range []uint32{16, 64, 256} {
			o, err := h3.Alloc(p3, size)
			if err != nil {
				t.Fatalf("post-recovery alloc(%d) (kept %s): %v", size, rep.KeptString(), err)
			}
			if seen[o] {
				t.Fatalf("post-recovery alloc(%d) returned duplicate %v", size, o)
			}
			seen[o] = true
		}
		if err := h3.CheckPool(p3); err != nil {
			t.Fatalf("after post-recovery allocs (kept %s): %v", rep.KeptString(), err)
		}
	})
}

// runArmedTB is runArmed for contexts without a *testing.T world builder.
func runArmedTB(h *Heap, at uint64, fn func() error) (crashed bool, err error) {
	h.NV.Arm(at)
	defer h.NV.Disarm()
	defer func() {
		if r := recover(); r != nil {
			if _, ok := nvmsim.AsCrashSignal(r); !ok {
				panic(r)
			}
			crashed = true
		}
	}()
	return false, fn()
}
