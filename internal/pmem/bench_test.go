package pmem

import (
	"fmt"
	"sync/atomic"
	"testing"

	"potgo/internal/emit"
	"potgo/internal/isa"
	"potgo/internal/oid"
	"potgo/internal/trace"
	"potgo/internal/vm"
)

// These microbenchmarks pin down the cost of the two hot paths the
// group-commit and slab work targets: a full undo-logged transaction commit
// (snapshot, CLWB drain, fence) and an alloc/free pair through the
// size-class slabs. The parallel variants run against one shared heap so
// concurrent commits exercise the leader/follower group fence and the
// allocator's per-shard locking.

func newBenchHeap(b *testing.B) (*Heap, *Pool) {
	b.Helper()
	as := vm.NewAddressSpace(1)
	h, err := NewHeap(as, NewStore(), emit.New(trace.Discard{}, emit.Opt), nil)
	if err != nil {
		b.Fatal(err)
	}
	p, err := h.CreateSized("bench", 1<<22, 1<<16)
	if err != nil {
		b.Fatal(err)
	}
	return h, p
}

// BenchmarkTxCommit measures one undo-logged overwrite transaction:
// Begin, AddRange (64-byte snapshot), one store, Commit (log seal, CLWB
// drain, fence, log truncate). Steady state must not allocate — the Tx
// handle and its snapshot arena are recycled.
func BenchmarkTxCommit(b *testing.B) {
	h, p := newBenchHeap(b)
	o, err := h.Alloc(p, 64)
	if err != nil {
		b.Fatal(err)
	}
	ref, err := h.Deref(o, isa.RZ)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		t, err := h.Begin(p)
		if err != nil {
			b.Fatal(err)
		}
		if err := t.AddRange(o, 64); err != nil {
			b.Fatal(err)
		}
		if err := ref.Store64(0, uint64(i), isa.RZ); err != nil {
			b.Fatal(err)
		}
		if err := t.Commit(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTxCommitParallel runs the same transaction from many goroutines
// against one sharded heap, each worker on its own pool (and shard lock),
// so concurrent Commits land in the heap's group-commit window and share
// one SFENCE per batch instead of paying one each.
func BenchmarkTxCommitParallel(b *testing.B) {
	sh, err := NewSharded(NewStore(), 8, 1)
	if err != nil {
		b.Fatal(err)
	}
	h := sh.Heap()
	// One pool (plus one pre-allocated object) per prospective worker;
	// RunParallel never runs more than GOMAXPROCS goroutines.
	type lane struct {
		p   *Pool
		o   oid.OID
		ref Ref
	}
	lanes := make([]lane, 64)
	for i := range lanes {
		p, err := sh.CreateSized(fmt.Sprintf("w%d", i), 1<<20, 1<<16)
		if err != nil {
			b.Fatal(err)
		}
		o, err := h.Alloc(p, 64)
		if err != nil {
			b.Fatal(err)
		}
		ref, err := h.Deref(o, isa.RZ)
		if err != nil {
			b.Fatal(err)
		}
		lanes[i] = lane{p: p, o: o, ref: ref}
	}
	var next atomic.Int64
	b.ReportAllocs()
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		ln := lanes[int(next.Add(1)-1)%len(lanes)]
		id := ln.p.ID()
		var i uint64
		for pb.Next() {
			i++
			sh.LockPool(id)
			t, err := h.Begin(ln.p)
			if err != nil {
				sh.UnlockPool(id)
				b.Fatal(err)
			}
			if err := t.AddRange(ln.o, 64); err != nil {
				sh.UnlockPool(id)
				b.Fatal(err)
			}
			if err := ln.ref.Store64(0, i, isa.RZ); err != nil {
				sh.UnlockPool(id)
				b.Fatal(err)
			}
			if err := t.Commit(); err != nil {
				sh.UnlockPool(id)
				b.Fatal(err)
			}
			sh.UnlockPool(id)
		}
	})
}

// BenchmarkAlloc measures an alloc/free pair per size class: a slab-slot
// bitmap flip plus free-list push/pop once the class's spans are warm.
func BenchmarkAlloc(b *testing.B) {
	for _, size := range []uint32{16, 64, 256, 1024} {
		b.Run(fmt.Sprintf("size%d", size), func(b *testing.B) {
			h, p := newBenchHeap(b)
			// Warm the class so the measured loop recycles slots instead
			// of carving fresh spans.
			o, err := h.Alloc(p, size)
			if err != nil {
				b.Fatal(err)
			}
			if err := h.Free(o); err != nil {
				b.Fatal(err)
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				o, err := h.Alloc(p, size)
				if err != nil {
					b.Fatal(err)
				}
				if err := h.Free(o); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkAllocParallel churns alloc/free pairs from many goroutines, each
// on its own pool under its shard lock, against one shared heap — the
// allocator's metadata persists through the same nvmsim write-back model
// the transactions use, so this exposes cross-shard contention in the
// persistence layer.
func BenchmarkAllocParallel(b *testing.B) {
	sh, err := NewSharded(NewStore(), 8, 1)
	if err != nil {
		b.Fatal(err)
	}
	h := sh.Heap()
	pools := make([]*Pool, 64)
	for i := range pools {
		p, err := sh.CreateSized(fmt.Sprintf("w%d", i), 1<<20, 1<<16)
		if err != nil {
			b.Fatal(err)
		}
		pools[i] = p
	}
	var next atomic.Int64
	b.ReportAllocs()
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		p := pools[int(next.Add(1)-1)%len(pools)]
		id := p.ID()
		for pb.Next() {
			sh.LockPool(id)
			o, err := h.Alloc(p, 64)
			if err != nil {
				sh.UnlockPool(id)
				b.Fatal(err)
			}
			if err := h.Free(o); err != nil {
				sh.UnlockPool(id)
				b.Fatal(err)
			}
			sh.UnlockPool(id)
		}
	})
}
