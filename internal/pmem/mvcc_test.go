package pmem

import (
	"encoding/binary"
	"sync"
	"sync/atomic"
	"testing"

	"potgo/internal/isa"
	"potgo/internal/nvmsim"
	"potgo/internal/oid"
)

// mvccEnv is a sharded heap with one MVCC-enabled pool and one 16-byte
// object committed with the given initial value (so the mirror has a
// version chain and G has advanced past the seed epoch).
func newMVCCEnv(t *testing.T) (*Sharded, *Pool, oid.OID) {
	t.Helper()
	sh := newTestSharded(t, 4)
	p, err := sh.Create("p", 1<<20)
	if err != nil {
		t.Fatalf("Create: %v", err)
	}
	sh.EnableMVCC(p)
	return sh, p, mvccPut(t, sh, p, oid.Null, 1)
}

// mvccPut commits one transaction writing val into o's first word,
// allocating the object first when o is null. Returns the object.
func mvccPut(t *testing.T, sh *Sharded, p *Pool, o oid.OID, val uint64) oid.OID {
	t.Helper()
	err := sh.Tx(p, nil, func(tx *Tx) error {
		if o.IsNull() {
			var err error
			if o, err = tx.Alloc(p, 16); err != nil {
				return err
			}
		} else if err := tx.AddRange(o, 16); err != nil {
			return err
		}
		ref, err := sh.Heap().Deref(o, isa.RZ)
		if err != nil {
			return err
		}
		return ref.Store64(0, val, isa.RZ)
	})
	if err != nil {
		t.Fatalf("mvccPut: %v", err)
	}
	return o
}

// snapVal resolves o through the pin and decodes the first word.
func snapVal(t *testing.T, s *PinSlot, o oid.OID) (uint64, bool) {
	t.Helper()
	buf, ok := s.SnapDeref(o)
	if !ok {
		return 0, false
	}
	if len(buf) < 8 {
		t.Fatalf("snapshot buf too short: %d", len(buf))
	}
	return binary.LittleEndian.Uint64(buf), true
}

// TestMVCCPinSeesCommitAtPinEpoch: a pin taken after a commit observes it;
// a pin held across a later commit keeps observing the pre-commit value,
// while a fresh pin observes the new one.
func TestMVCCPinSeesCommitAtPinEpoch(t *testing.T) {
	sh, p, o := newMVCCEnv(t)
	m := sh.MVCC()

	old := m.Pin()
	if old == nil {
		t.Fatal("Pin returned nil with an empty registry")
	}
	if v, ok := snapVal(t, old, o); !ok || v != 1 {
		t.Fatalf("pinned read = %d,%v; want 1,true", v, ok)
	}

	mvccPut(t, sh, p, o, 2)

	if v, ok := snapVal(t, old, o); !ok || v != 1 {
		t.Fatalf("held pin must keep the old version: got %d,%v; want 1,true", v, ok)
	}
	fresh := m.Pin()
	if fresh == nil {
		t.Fatal("second Pin returned nil")
	}
	if v, ok := snapVal(t, fresh, o); !ok || v != 2 {
		t.Fatalf("fresh pin read = %d,%v; want 2,true", v, ok)
	}
	if fresh.Epoch() <= old.Epoch() {
		t.Fatalf("epochs must advance: old %d, fresh %d", old.Epoch(), fresh.Epoch())
	}
	m.Unpin(old)
	m.Unpin(fresh)
}

// TestMVCCReclaimRespectsPins: a superseded version survives reclamation
// while a pin can still see it, and is freed once the pin drops.
func TestMVCCReclaimRespectsPins(t *testing.T) {
	sh, p, o := newMVCCEnv(t)
	m := sh.MVCC()

	old := m.Pin()
	mvccPut(t, sh, p, o, 2)

	if freed := m.Reclaim(); freed != 0 {
		t.Fatalf("Reclaim freed %d versions under an active pin", freed)
	}
	if v, ok := snapVal(t, old, o); !ok || v != 1 {
		t.Fatalf("post-reclaim pinned read = %d,%v; want 1,true", v, ok)
	}

	m.Unpin(old)
	if freed := m.Reclaim(); freed == 0 {
		t.Fatal("Reclaim freed nothing after the pin dropped")
	}
	fresh := m.Pin()
	if v, ok := snapVal(t, fresh, o); !ok || v != 2 {
		t.Fatalf("current version lost by reclamation: %d,%v; want 2,true", v, ok)
	}
	m.Unpin(fresh)
}

// TestMVCCPinExhaustion: a full registry returns nil (latched fallback),
// and a freed slot becomes claimable again.
func TestMVCCPinExhaustion(t *testing.T) {
	m := NewMVCC(2)
	a, b := m.Pin(), m.Pin()
	if a == nil || b == nil {
		t.Fatal("registry of 2 must serve two pins")
	}
	if m.Pin() != nil {
		t.Fatal("exhausted registry must return nil")
	}
	m.Unpin(a)
	c := m.Pin()
	if c == nil {
		t.Fatal("freed slot must be claimable")
	}
	m.Unpin(b)
	m.Unpin(c)
}

// TestMVCCMultiObjectCommitAtomic: a transaction touching two objects
// becomes visible atomically — any pin sees either both old or both new
// values, never a mix. (Single-threaded: a pin taken before the commit
// sees both old; after, both new.)
func TestMVCCMultiObjectCommitAtomic(t *testing.T) {
	sh, p, o1 := newMVCCEnv(t)
	m := sh.MVCC()
	o2 := mvccPut(t, sh, p, oid.Null, 10)

	before := m.Pin()
	err := sh.Tx(p, nil, func(tx *Tx) error {
		for _, o := range []oid.OID{o1, o2} {
			if err := tx.AddRange(o, 16); err != nil {
				return err
			}
			ref, err := sh.Heap().Deref(o, isa.RZ)
			if err != nil {
				return err
			}
			w, err := ref.Load64(0)
			if err != nil {
				return err
			}
			if err := ref.Store64(0, w.V+100, w.Reg); err != nil {
				return err
			}
		}
		return nil
	})
	if err != nil {
		t.Fatalf("multi-object tx: %v", err)
	}
	v1, _ := snapVal(t, before, o1)
	v2, _ := snapVal(t, before, o2)
	if v1 != 1 || v2 != 10 {
		t.Fatalf("pre-commit pin saw %d,%d; want 1,10", v1, v2)
	}
	after := m.Pin()
	v1, _ = snapVal(t, after, o1)
	v2, _ = snapVal(t, after, o2)
	if v1 != 101 || v2 != 110 {
		t.Fatalf("post-commit pin saw %d,%d; want 101,110", v1, v2)
	}
	m.Unpin(before)
	m.Unpin(after)
}

// TestMVCCFreeDemotes: freeing an object ends its chain — an old pin keeps
// reading it, a fresh pin misses (and falls back to the latched path, which
// would report the free through the allocator).
func TestMVCCFreeDemotes(t *testing.T) {
	sh, p, o := newMVCCEnv(t)
	m := sh.MVCC()

	old := m.Pin()
	if err := sh.Tx(p, nil, func(tx *Tx) error { return tx.Free(o) }); err != nil {
		t.Fatalf("free tx: %v", err)
	}
	if v, ok := snapVal(t, old, o); !ok || v != 1 {
		t.Fatalf("pin predating the free must still read: %d,%v", v, ok)
	}
	fresh := m.Pin()
	if _, ok := snapVal(t, fresh, o); ok {
		t.Fatal("freed object must be invisible to a fresh pin")
	}
	m.Unpin(old)
	m.Unpin(fresh)
}

// TestMVCCSameTxAllocFree: an object allocated and freed inside one
// transaction never becomes visible.
func TestMVCCSameTxAllocFree(t *testing.T) {
	sh, p, _ := newMVCCEnv(t)
	m := sh.MVCC()
	var o oid.OID
	err := sh.Tx(p, nil, func(tx *Tx) error {
		var err error
		if o, err = tx.Alloc(p, 16); err != nil {
			return err
		}
		return tx.Free(o)
	})
	if err != nil {
		t.Fatalf("alloc+free tx: %v", err)
	}
	s := m.Pin()
	if _, ok := snapVal(t, s, o); ok {
		t.Fatal("same-tx alloc+free must leave no visible version")
	}
	m.Unpin(s)
}

// TestMVCCStaleMutation: MutateStaleReads freezes new pins at the mutation
// epoch (readers keep seeing the stale prefix while writers advance) and
// ClearStaleMutation restores honest pinning.
func TestMVCCStaleMutation(t *testing.T) {
	sh, p, o := newMVCCEnv(t)
	m := sh.MVCC()

	m.MutateStaleReads()
	mvccPut(t, sh, p, o, 2)

	s := m.Pin()
	if v, ok := snapVal(t, s, o); !ok || v != 1 {
		t.Fatalf("mutated pin read = %d,%v; want the stale 1,true", v, ok)
	}
	m.Unpin(s)

	m.ClearStaleMutation()
	s = m.Pin()
	if v, ok := snapVal(t, s, o); !ok || v != 2 {
		t.Fatalf("post-clear pin read = %d,%v; want 2,true", v, ok)
	}
	m.Unpin(s)
}

// TestMVCCCrashResets: a crash discards the volatile mirror entirely.
func TestMVCCCrashResets(t *testing.T) {
	sh, _, o := newMVCCEnv(t)
	m := sh.MVCC()
	if _, err := sh.Crash(nvmsim.DropAllPolicy()); err != nil {
		t.Fatalf("Crash: %v", err)
	}
	if got := m.Epoch(); got != 1 {
		t.Fatalf("post-crash epoch = %d, want 1", got)
	}
	s := m.Pin()
	if _, ok := snapVal(t, s, o); ok {
		t.Fatal("post-crash mirror must be empty until reseeded")
	}
	m.Unpin(s)
}

// TestMVCCSeedVisible: Seed publishes a borne-0 version visible at every
// epoch — the mount-time bootstrap for pre-existing objects.
func TestMVCCSeedVisible(t *testing.T) {
	sh := newTestSharded(t, 2)
	p, err := sh.Create("p", 1<<20)
	if err != nil {
		t.Fatalf("Create: %v", err)
	}
	o, err := sh.Heap().Alloc(p, 16)
	if err != nil {
		t.Fatalf("Alloc: %v", err)
	}
	ref, _ := sh.Heap().Deref(o, isa.RZ)
	if err := ref.Store64(0, 77, isa.RZ); err != nil {
		t.Fatalf("Store64: %v", err)
	}
	sh.EnableMVCC(p)
	m := sh.MVCC()
	if err := m.Seed(sh.Heap(), p, o, 16); err != nil {
		t.Fatalf("Seed: %v", err)
	}
	s := m.Pin()
	if v, ok := snapVal(t, s, o); !ok || v != 77 {
		t.Fatalf("seeded read = %d,%v; want 77,true", v, ok)
	}
	m.Unpin(s)
}

// TestMVCCConcurrentReadersWritersReclaim is the race-detector proof for
// the mirror: readers pin/deref latch-free, a writer commits increasing
// values, and a reclaimer sweeps — all concurrently. Each reader's
// observed sequence must be monotone non-decreasing (epochs only advance)
// and every pinned deref must succeed (the chain always has a version
// visible at the pinned epoch once seeded).
func TestMVCCConcurrentReadersWritersReclaim(t *testing.T) {
	sh, p, o := newMVCCEnv(t)
	m := sh.MVCC()

	const (
		readers = 4
		writes  = 300
		reads   = 600
	)
	var stop atomic.Bool
	var wg sync.WaitGroup

	wg.Add(1)
	go func() { // writer
		defer wg.Done()
		defer stop.Store(true)
		for i := uint64(2); i < 2+writes; i++ {
			mvccPut(t, sh, p, o, i)
		}
	}()

	wg.Add(1)
	go func() { // reclaimer
		defer wg.Done()
		for !stop.Load() {
			sh.ReclaimVersions()
		}
		sh.ReclaimVersions()
	}()

	errs := make(chan string, readers)
	for r := 0; r < readers; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			last := uint64(0)
			for i := 0; i < reads; i++ {
				s := m.Pin()
				if s == nil {
					continue // registry momentarily exhausted: fallback path
				}
				v, ok := snapVal(t, s, o)
				m.Unpin(s)
				if !ok {
					errs <- "pinned deref failed on a seeded object"
					return
				}
				if v < last {
					errs <- "observed value went backwards"
					return
				}
				last = v
			}
		}()
	}
	wg.Wait()
	close(errs)
	for e := range errs {
		t.Error(e)
	}

	pub, rec := m.Stats()
	if pub == 0 || rec == 0 {
		t.Fatalf("stress must publish and reclaim: publishes=%d reclaimed=%d", pub, rec)
	}
}
