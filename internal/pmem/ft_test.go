package pmem

import (
	"errors"
	"testing"

	"potgo/internal/emit"
	"potgo/internal/isa"
	"potgo/internal/nvmsim"
	"potgo/internal/oid"
	"potgo/internal/randtest"
	"potgo/internal/vm"
)

// newFTEnv builds a single-threaded OPT heap with one fault-tolerant pool.
func newFTEnv(t *testing.T) (*env, *Pool) {
	t.Helper()
	e := newEnv(t, emit.Opt)
	p, err := e.h.CreateSizedFT("ft", testPoolBytes, DefaultLogBytes)
	if err != nil {
		t.Fatal(err)
	}
	return e, p
}

// ftAllocObjs allocates n slab objects of the given size transactionally
// and fills each with a deterministic pattern, committing as it goes, so
// checksums and parity are maintained by the commit path.
func ftAllocObjs(t *testing.T, h *Heap, p *Pool, n int, size uint32) []oid.OID {
	t.Helper()
	objs := make([]oid.OID, n)
	for i := range objs {
		if err := h.TxBegin(p); err != nil {
			t.Fatal(err)
		}
		o, err := h.TxAlloc(p, size)
		if err != nil {
			t.Fatal(err)
		}
		ref, err := h.Deref(o, isa.RZ)
		if err != nil {
			t.Fatal(err)
		}
		for off := uint32(0); off+8 <= size; off += 8 {
			if err := ref.Store64(off, uint64(i)<<32|uint64(off)|0xABCD, isa.RZ); err != nil {
				t.Fatal(err)
			}
		}
		if err := h.TxEnd(); err != nil {
			t.Fatal(err)
		}
		objs[i] = o
	}
	return objs
}

func readObj(t *testing.T, h *Heap, o oid.OID, size uint32) []byte {
	t.Helper()
	ref, err := h.Deref(o, isa.RZ)
	if err != nil {
		t.Fatal(err)
	}
	b := make([]byte, size)
	if err := ref.ReadBytes(0, b); err != nil {
		t.Fatal(err)
	}
	return b
}

func TestFTLayout(t *testing.T) {
	e, p := newFTEnv(t)
	if !p.FaultTolerant() {
		t.Fatal("pool must report fault tolerance")
	}
	if p.b.parityBytes == 0 {
		t.Fatal("parity column must be non-empty")
	}
	want := logStart + p.b.logBytes + p.b.parityBytes
	if p.dataStart() != want {
		t.Fatalf("dataStart = %#x, want %#x", p.dataStart(), want)
	}
	// Every parity line a data-region group can name must fit in the column.
	dataLines := (p.b.size - p.dataStart() + nvmsim.LineBytes - 1) / nvmsim.LineBytes
	groups := (dataLines + parityStride - 1) / parityStride
	if groups*nvmsim.LineBytes > p.b.parityBytes {
		t.Fatalf("parity column %d bytes too small for %d groups", p.b.parityBytes, groups)
	}
	if err := e.h.CheckPool(p); err != nil {
		t.Fatal(err)
	}
	// A plain pool on the same heap is unaffected.
	q := e.create(t, "plain")
	if q.FaultTolerant() {
		t.Fatal("plain pool must not report fault tolerance")
	}
	if err := e.h.CheckPool(q); err != nil {
		t.Fatal(err)
	}
}

func TestFTCommitMaintainsDerivedState(t *testing.T) {
	e, p := newFTEnv(t)
	objs := ftAllocObjs(t, e.h, p, 8, 64)
	// Every committed object's stored checksum matches its payload, and a
	// full scrub finds nothing to repair.
	st, err := e.h.ScrubPool(p)
	if err != nil {
		t.Fatal(err)
	}
	if st.Checked != len(objs) || st.Repaired != 0 || st.Unrepairable != 0 || st.ParityRepaired != 0 {
		t.Fatalf("clean pool scrub = %+v", st)
	}
	// VerifyOnRead passes on every object.
	e.h.SetVerifyOnRead(true)
	for _, o := range objs {
		if _, err := e.h.Deref(o, isa.RZ); err != nil {
			t.Fatalf("verified deref of clean object: %v", err)
		}
	}
}

func TestFTVerifyOnReadCatchesPayloadFlip(t *testing.T) {
	e, p := newFTEnv(t)
	objs := ftAllocObjs(t, e.h, p, 4, 64)
	before := readObj(t, e.h, objs[1], 64)
	if err := e.h.SyncPool(p); err != nil {
		t.Fatal(err)
	}
	seed := uint64(randtest.Seed(t, 41))
	t.Logf("corruption seed %d", seed)
	faults, err := e.h.CorruptObjects(1, CorruptDetect, seed)
	if err != nil {
		t.Fatal(err)
	}
	if len(faults) != 1 || faults[0].Kind != "payload" {
		t.Fatalf("faults = %+v", faults)
	}
	bad := faults[0].OID
	e.h.SetVerifyOnRead(true)
	_, err = e.h.Deref(bad, isa.RZ)
	if !errors.Is(err, ErrCorrupt) {
		t.Fatalf("deref of corrupt object = %v, want ErrCorrupt", err)
	}
	var ce *CorruptError
	if !errors.As(err, &ce) || ce.OID != bad {
		t.Fatalf("corrupt error names %v, want %v", ce, bad)
	}
	// Inline repair brings the object back byte-exactly.
	repaired, err := e.h.RepairObject(bad)
	if err != nil || !repaired {
		t.Fatalf("RepairObject = %v, %v", repaired, err)
	}
	if _, err := e.h.Deref(bad, isa.RZ); err != nil {
		t.Fatalf("deref after repair: %v", err)
	}
	if bad == objs[1] {
		after := readObj(t, e.h, objs[1], 64)
		if string(before) != string(after) {
			t.Fatal("repaired payload differs from original")
		}
	}
}

func TestFTScrubRepairsPayloadFlips(t *testing.T) {
	for _, k := range []int{1, 4} {
		e, p := newFTEnv(t)
		objs := ftAllocObjs(t, e.h, p, 16, 128)
		baseline := make(map[oid.OID][]byte, len(objs))
		for _, o := range objs {
			baseline[o] = readObj(t, e.h, o, 128)
		}
		if err := e.h.SyncPool(p); err != nil {
			t.Fatal(err)
		}
		seed := uint64(randtest.Seed(t, 43))
		t.Logf("k=%d corruption seed %d", k, seed)
		faults, err := e.h.CorruptObjects(k, CorruptDetect, seed)
		if err != nil {
			t.Fatal(err)
		}
		st, err := e.h.ScrubPool(p)
		if err != nil {
			t.Fatal(err)
		}
		if st.Repaired != len(faults) || st.Unrepairable != 0 {
			t.Fatalf("k=%d scrub = %+v, want %d repaired", k, st, len(faults))
		}
		e.h.SetVerifyOnRead(true)
		for _, o := range objs {
			got := readObj(t, e.h, o, 128)
			if string(got) != string(baseline[o]) {
				t.Fatalf("k=%d object %v bytes differ after repair", k, o)
			}
		}
		// A second scrub is a no-op: repair converged.
		st2, err := e.h.ScrubPool(p)
		if err != nil {
			t.Fatal(err)
		}
		if st2.Repaired != 0 || st2.Unrepairable != 0 || st2.ParityRepaired != 0 {
			t.Fatalf("k=%d second scrub = %+v, want clean", k, st2)
		}
	}
}

func TestFTScrubRepairsSilentFlips(t *testing.T) {
	e, p := newFTEnv(t)
	ftAllocObjs(t, e.h, p, 32, 256)
	if err := e.h.SyncPool(p); err != nil {
		t.Fatal(err)
	}
	seed := uint64(randtest.Seed(t, 47))
	t.Logf("corruption seed %d", seed)
	faults, err := e.h.CorruptObjects(4, CorruptSilent, seed)
	if err != nil {
		t.Fatal(err)
	}
	// Silent faults are invisible to VerifyOnRead...
	e.h.SetVerifyOnRead(true)
	csums := 0
	for _, f := range faults {
		if f.Kind == "payload" {
			t.Fatalf("silent mode injected a payload fault: %+v", f)
		}
		if f.Kind == "csum" {
			csums++
		}
		if _, err := e.h.Deref(f.OID, isa.RZ); err != nil && f.Kind == "parity" {
			t.Fatalf("parity fault visible to read: %v", err)
		}
	}
	e.h.SetVerifyOnRead(false)
	// ...but the scrub accounts for every one: checksum faults repair in
	// phase A, parity faults in the group sweep.
	st, err := e.h.ScrubPool(p)
	if err != nil {
		t.Fatal(err)
	}
	if st.Repaired != csums || st.ParityRepaired != len(faults)-csums || st.Unrepairable != 0 {
		t.Fatalf("scrub = %+v, want %d csum repairs + %d parity repairs",
			st, csums, len(faults)-csums)
	}
	st2, err := e.h.ScrubPool(p)
	if err != nil {
		t.Fatal(err)
	}
	if st2.Repaired != 0 || st2.Unrepairable != 0 || st2.ParityRepaired != 0 {
		t.Fatalf("second scrub = %+v, want clean", st2)
	}
}

func TestFTVerifyStandsDownInTx(t *testing.T) {
	e, p := newFTEnv(t)
	objs := ftAllocObjs(t, e.h, p, 2, 64)
	e.h.SetVerifyOnRead(true)
	if err := e.h.TxBegin(p); err != nil {
		t.Fatal(err)
	}
	if err := e.h.TxAddRange(objs[0], 64); err != nil {
		t.Fatal(err)
	}
	ref, err := e.h.Deref(objs[0], isa.RZ)
	if err != nil {
		t.Fatal(err)
	}
	if err := ref.Store64(0, 0xDEAD, isa.RZ); err != nil {
		t.Fatal(err)
	}
	// The stored checksum is now stale, but mid-transaction dereference
	// must not trip.
	if _, err := e.h.Deref(objs[0], isa.RZ); err != nil {
		t.Fatalf("mid-tx deref: %v", err)
	}
	if err := e.h.TxEnd(); err != nil {
		t.Fatal(err)
	}
	// Commit recomputed the checksum; verification is live again.
	if _, err := e.h.Deref(objs[0], isa.RZ); err != nil {
		t.Fatalf("post-commit deref: %v", err)
	}
}

func TestFTAbortRestoresDerivedState(t *testing.T) {
	e, p := newFTEnv(t)
	objs := ftAllocObjs(t, e.h, p, 2, 64)
	before := readObj(t, e.h, objs[0], 64)
	if err := e.h.TxBegin(p); err != nil {
		t.Fatal(err)
	}
	if err := e.h.TxAddRange(objs[0], 64); err != nil {
		t.Fatal(err)
	}
	ref, err := e.h.Deref(objs[0], isa.RZ)
	if err != nil {
		t.Fatal(err)
	}
	if err := ref.Store64(0, 0xBEEF, isa.RZ); err != nil {
		t.Fatal(err)
	}
	if _, err := e.h.TxAlloc(p, 64); err != nil {
		t.Fatal(err)
	}
	if err := e.h.TxAbort(); err != nil {
		t.Fatal(err)
	}
	if got := readObj(t, e.h, objs[0], 64); string(got) != string(before) {
		t.Fatal("abort did not restore bytes")
	}
	st, err := e.h.ScrubPool(p)
	if err != nil {
		t.Fatal(err)
	}
	if st.Repaired != 0 || st.Unrepairable != 0 || st.ParityRepaired != 0 {
		t.Fatalf("scrub after abort = %+v, want clean", st)
	}
	e.h.SetVerifyOnRead(true)
	if _, err := e.h.Deref(objs[0], isa.RZ); err != nil {
		t.Fatalf("deref after abort: %v", err)
	}
}

func TestFTRecoverRestoresDerivedState(t *testing.T) {
	store := NewStore()
	{
		as := vm.NewAddressSpace(7001)
		h := freshHeap(t, as, store)
		p, err := h.CreateSizedFT("ft", testPoolBytes, DefaultLogBytes)
		if err != nil {
			t.Fatal(err)
		}
		objs := ftAllocObjs(t, h, p, 4, 64)
		// Open a transaction, dirty an object, and crash before commit.
		if err := h.TxBegin(p); err != nil {
			t.Fatal(err)
		}
		if err := h.TxAddRange(objs[0], 64); err != nil {
			t.Fatal(err)
		}
		ref, err := h.Deref(objs[0], isa.RZ)
		if err != nil {
			t.Fatal(err)
		}
		if err := ref.Store64(0, 0xFEED, isa.RZ); err != nil {
			t.Fatal(err)
		}
		if _, err := h.Crash(nvmsim.DropAllPolicy()); err != nil {
			t.Fatal(err)
		}
	}
	// Fresh process: reopen, recover, and the derived state must hold
	// without any rebuild.
	as := vm.NewAddressSpace(7002)
	h := freshHeap(t, as, store)
	p, err := h.Open("ft")
	if err != nil {
		t.Fatal(err)
	}
	if !h.NeedsRecovery(p) {
		t.Fatal("pool must need recovery after mid-tx crash")
	}
	if err := h.Recover(p); err != nil {
		t.Fatal(err)
	}
	if err := h.CheckPool(p); err != nil {
		t.Fatal(err)
	}
	st, err := h.ScrubPool(p)
	if err != nil {
		t.Fatal(err)
	}
	if st.Repaired != 0 || st.Unrepairable != 0 || st.ParityRepaired != 0 {
		t.Fatalf("scrub after recovery = %+v, want clean", st)
	}
}

func TestFTCorruptObjectsDeterministic(t *testing.T) {
	seed := uint64(randtest.Seed(t, 53))
	t.Logf("corruption seed %d", seed)
	run := func() []Corruption {
		e, p := newFTEnv(t)
		ftAllocObjs(t, e.h, p, 16, 256)
		if err := e.h.SyncPool(p); err != nil {
			t.Fatal(err)
		}
		faults, err := e.h.CorruptObjects(3, CorruptSilent, seed)
		if err != nil {
			t.Fatal(err)
		}
		return faults
	}
	a, b := run(), run()
	if len(a) != len(b) {
		t.Fatalf("fault counts differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("fault %d differs: %+v vs %+v", i, a[i], b[i])
		}
	}
}

func TestFTMutateNoParityBreaksRepair(t *testing.T) {
	e, p := newFTEnv(t)
	e.h.MutateNoParity(true)
	ftAllocObjs(t, e.h, p, 8, 64)
	if err := e.h.SyncPool(p); err != nil {
		t.Fatal(err)
	}
	seed := uint64(randtest.Seed(t, 59))
	t.Logf("corruption seed %d", seed)
	if _, err := e.h.CorruptObjects(2, CorruptDetect, seed); err != nil {
		t.Fatal(err)
	}
	st, err := e.h.ScrubPool(p)
	if err != nil {
		t.Fatal(err)
	}
	// With parity maintenance disabled the faults are detected but cannot
	// be reconstructed: the campaign's mutation check hinges on this.
	if st.Unrepairable == 0 {
		t.Fatalf("scrub with parity disabled = %+v, want unrepairable > 0", st)
	}
}
