package pmem

import (
	"fmt"
	"sort"
	"sync"

	"potgo/internal/emit"
	"potgo/internal/nvmsim"
	"potgo/internal/oid"
	"potgo/internal/pot"
	"potgo/internal/trace"
	"potgo/internal/vm"
)

// Sharded is a persistent heap safe for concurrent clients. It wraps one
// Heap (so multi-pool transactions stay natively crash-atomic: a single
// undo log can reference objects in any involved pool) and shards lock
// ownership by pool id — the paper's pool-id ‖ offset ObjectID split gives
// the shard key for free.
//
// The locking discipline, from the outside in:
//
//   - Application latches (LatchTable) order before everything here.
//   - Shard locks: every operation declares the pools it will touch;
//     View/Update/Tx acquire the corresponding shard locks in ascending
//     shard order, so two multi-shard transactions can never deadlock.
//     Reads share a shard; writes and transactions are exclusive.
//   - Structural operations (create/open/close/sync/crash/recover) are
//     stop-the-world: all shard locks, exclusive, in order.
//   - Heap-internal state that cannot be sharded — the volatile
//     write-back cache model and its crash-event numbering — sits behind
//     the heap's own nvMu, innermost, never held across a callback.
//
// The heap's emitter is detached: an instruction trace is a
// single-threaded notion, and the concurrent heap keeps only the
// persistence-domain events (which is what the concurrent crash harness
// injects faults into).
type Sharded struct {
	h       *Heap
	nshards int
	shards  []rwShard

	// scrub is the background media scrubber, if one is running; scrubMu
	// guards the slot. Structural operations pause it (stopTheWorld)
	// before taking every shard lock.
	scrubMu sync.Mutex
	scrub   *Scrubber
}

// rwShard pads each lock to its own cache line so shard locks don't false-
// share under contention.
type rwShard struct {
	mu sync.RWMutex
	_  [40]byte
}

// NewSharded builds a concurrent heap over the given pool store with the
// given number of lock shards. The address space is created here (seeded
// ASLR, concurrent mode) along with an OPT-mode discard-trace heap, a
// concurrent POT, and a persistence domain that poisons itself at a crash
// so racing workers stop.
func NewSharded(store *Store, nshards int, seed int64) (*Sharded, error) {
	if nshards <= 0 {
		return nil, fmt.Errorf("pmem: sharded heap needs at least one shard, got %d", nshards)
	}
	as := vm.NewAddressSpace(seed)
	as.SetConcurrent()
	h, err := NewHeap(as, store, emit.New(trace.Discard{}, emit.Opt), nil)
	if err != nil {
		return nil, err
	}
	pt, err := pot.New(as, pot.DefaultEntries)
	if err != nil {
		return nil, err
	}
	pt.SetConcurrent()
	h.POT = pt
	h.Emit.Detach()
	h.SetConcurrent()
	h.NV.SetPoisonOnCrash(true)
	return &Sharded{
		h:       h,
		nshards: nshards,
		shards:  make([]rwShard, nshards),
	}, nil
}

// Heap exposes the underlying heap. Callers must respect the locking
// discipline: data access only inside View/Update/Tx (or stop-the-world
// helpers), declaring every pool they touch.
func (s *Sharded) Heap() *Heap { return s.h }

// Shards returns the number of lock shards.
func (s *Sharded) Shards() int { return s.nshards }

// ShardOf maps a pool id to its lock shard.
func (s *Sharded) ShardOf(id oid.PoolID) int { return int(uint32(id)) % s.nshards }

// shardSet returns the sorted, deduplicated shard indices for a pool set.
func (s *Sharded) shardSet(pools []oid.PoolID) []int {
	idx := make([]int, 0, len(pools))
	for _, id := range pools {
		idx = append(idx, s.ShardOf(id))
	}
	sort.Ints(idx)
	out := idx[:0]
	for i, v := range idx {
		if i == 0 || v != idx[i-1] {
			out = append(out, v)
		}
	}
	return out
}

func (s *Sharded) lockShards(idx []int) func() {
	for _, i := range idx {
		s.shards[i].mu.Lock()
	}
	return func() {
		for i := len(idx) - 1; i >= 0; i-- {
			s.shards[idx[i]].mu.Unlock()
		}
	}
}

func (s *Sharded) rlockShards(idx []int) func() {
	for _, i := range idx {
		s.shards[i].mu.RLock()
	}
	return func() {
		for i := len(idx) - 1; i >= 0; i-- {
			s.shards[idx[i]].mu.RUnlock()
		}
	}
}

// lockAll write-locks every shard in order — the stop-the-world entry for
// structural operations.
func (s *Sharded) lockAll() func() {
	for i := range s.shards {
		s.shards[i].mu.Lock()
	}
	return func() {
		for i := len(s.shards) - 1; i >= 0; i-- {
			s.shards[i].mu.Unlock()
		}
	}
}

// The closure-based View/Update/Tx entries allocate (the pool-id slice, the
// shard set, the closure's captures). The explicit lock helpers below are
// their allocation-free counterparts for hot single-pool request paths
// (internal/objstore); callers own the pairing and the discipline: data
// access only between lock and unlock, ascending shard order for multi-
// shard masks.

// RLockPool read-locks the shard owning pool id.
func (s *Sharded) RLockPool(id oid.PoolID) { s.shards[s.ShardOf(id)].mu.RLock() }

// RUnlockPool undoes RLockPool.
func (s *Sharded) RUnlockPool(id oid.PoolID) { s.shards[s.ShardOf(id)].mu.RUnlock() }

// LockPool write-locks the shard owning pool id.
func (s *Sharded) LockPool(id oid.PoolID) { s.shards[s.ShardOf(id)].mu.Lock() }

// UnlockPool undoes LockPool.
func (s *Sharded) UnlockPool(id oid.PoolID) { s.shards[s.ShardOf(id)].mu.Unlock() }

// RLockAll read-locks every shard in ascending order (consistent multi-
// shard snapshots: scans, invariant sweeps).
func (s *Sharded) RLockAll() {
	for i := range s.shards {
		s.shards[i].mu.RLock()
	}
}

// RUnlockAll undoes RLockAll.
func (s *Sharded) RUnlockAll() {
	for i := len(s.shards) - 1; i >= 0; i-- {
		s.shards[i].mu.RUnlock()
	}
}

// LockShardMask write-locks the shards whose bits are set in mask, in
// ascending order — the deadlock-free multi-shard acquisition for callers
// that can express their shard set as a bitmask (nshards <= 64).
func (s *Sharded) LockShardMask(mask uint64) {
	for i := 0; i < s.nshards; i++ {
		if mask&(1<<uint(i)) != 0 {
			s.shards[i].mu.Lock()
		}
	}
}

// UnlockShardMask undoes LockShardMask.
func (s *Sharded) UnlockShardMask(mask uint64) {
	for i := s.nshards - 1; i >= 0; i-- {
		if mask&(1<<uint(i)) != 0 {
			s.shards[i].mu.Unlock()
		}
	}
}

// View runs fn while holding the read locks of every listed pool's shard.
// fn must only read — loads emit no persistence-domain events, so
// concurrent readers of one shard are safe.
func (s *Sharded) View(pools []oid.PoolID, fn func() error) error {
	defer s.rlockShards(s.shardSet(pools))()
	return fn()
}

// Update runs fn while holding the write locks of every listed pool's
// shard, for non-transactional mutations (setup writes, direct pokes).
func (s *Sharded) Update(pools []oid.PoolID, fn func() error) error {
	defer s.lockShards(s.shardSet(pools))()
	return fn()
}

// Tx runs fn inside a transaction whose undo log lives in logPool, holding
// the write locks of logPool's shard and every extra pool's shard
// (ascending shard order). fn may allocate, free and mutate objects in any
// declared pool through the Tx handle; on error the transaction aborts, on
// success it commits. Transactions whose shard sets are disjoint run in
// parallel.
func (s *Sharded) Tx(logPool *Pool, extra []oid.PoolID, fn func(*Tx) error) error {
	ids := make([]oid.PoolID, 0, len(extra)+1)
	ids = append(ids, logPool.ID())
	ids = append(ids, extra...)
	defer s.lockShards(s.shardSet(ids))()
	t, err := s.h.Begin(logPool)
	if err != nil {
		return err
	}
	if err := fn(t); err != nil {
		if aerr := t.Abort(); aerr != nil {
			return fmt.Errorf("%w (abort also failed: %v)", err, aerr)
		}
		return err
	}
	return t.Commit()
}

// --- MVCC snapshot reads ---

// EnableMVCC attaches the epoch-versioned snapshot mirror to the heap and
// marks pool p as versioned (stop-the-world: flips commit behaviour).
func (s *Sharded) EnableMVCC(p *Pool) {
	defer s.stopTheWorld()()
	s.h.EnableMVCC(p)
}

// MVCC returns the heap's version mirror (nil when never enabled).
func (s *Sharded) MVCC() *MVCC { return s.h.mvcc }

// Pin claims a snapshot-read registration at the current epoch, or nil
// when MVCC is not enabled or the registry is exhausted — callers fall
// back to the latched read path. Pin takes no shard locks.
//
//potlint:snapshot-read
func (s *Sharded) Pin() *PinSlot {
	if m := s.h.mvcc; m != nil {
		return m.Pin()
	}
	return nil
}

// Unpin releases a Pin registration.
//
//potlint:snapshot-read
func (s *Sharded) Unpin(sl *PinSlot) { s.h.mvcc.Unpin(sl) }

// ReclaimVersions runs one epoch-reclamation sweep, freeing superseded
// versions no pinned reader can still see. Safe to run concurrently with
// readers and committing writers.
func (s *Sharded) ReclaimVersions() int {
	if m := s.h.mvcc; m != nil {
		return m.Reclaim()
	}
	return 0
}

// --- structural operations (stop-the-world) ---

// Create makes a new pool with the default undo-log capacity.
func (s *Sharded) Create(name string, size uint64) (*Pool, error) {
	defer s.stopTheWorld()()
	return s.h.Create(name, size)
}

// CreateSized is Create with an explicit undo-log capacity.
func (s *Sharded) CreateSized(name string, size, logBytes uint64) (*Pool, error) {
	defer s.stopTheWorld()()
	return s.h.CreateSized(name, size, logBytes)
}

// Open maps a previously created pool.
func (s *Sharded) Open(name string) (*Pool, error) {
	defer s.stopTheWorld()()
	return s.h.Open(name)
}

// Close unmaps a pool.
func (s *Sharded) Close(p *Pool) error {
	defer s.stopTheWorld()()
	return s.h.Close(p)
}

// Recover replays a pool's undo log after a crash.
func (s *Sharded) Recover(p *Pool) error {
	defer s.stopTheWorld()()
	return s.h.Recover(p)
}

// SyncAll flushes every pool's cache view to the durable store.
func (s *Sharded) SyncAll() error {
	defer s.stopTheWorld()()
	return s.h.SyncAll()
}

// Crash simulates losing power under the given line-loss policy. Callers
// must have stopped (or be prepared to have poisoned) all workers: the
// domain poison-stops any that race past the crash point, and Crash itself
// runs stop-the-world.
func (s *Sharded) Crash(pol nvmsim.Policy) (nvmsim.Report, error) {
	defer s.stopTheWorld()()
	return s.h.Crash(pol)
}
