package pmem

import (
	"testing"

	"potgo/internal/emit"
	"potgo/internal/isa"
	"potgo/internal/nvmsim"
	"potgo/internal/oid"
	"potgo/internal/trace"
	"potgo/internal/vm"
)

type env struct {
	as    *vm.AddressSpace
	store *Store
	buf   *trace.Buffer
	h     *Heap
}

func newEnv(t *testing.T, mode emit.Mode) *env {
	t.Helper()
	as := vm.NewAddressSpace(7)
	store := NewStore()
	return attach(t, as, store, mode)
}

func attach(t *testing.T, as *vm.AddressSpace, store *Store, mode emit.Mode) *env {
	t.Helper()
	buf := &trace.Buffer{}
	em := emit.New(buf, mode)
	var soft *emit.SoftTranslator
	if mode == emit.Base {
		var err error
		soft, err = emit.NewSoftTranslator(em, as, 256)
		if err != nil {
			t.Fatal(err)
		}
	}
	h, err := NewHeap(as, store, em, soft)
	if err != nil {
		t.Fatal(err)
	}
	return &env{as: as, store: store, buf: buf, h: h}
}

const testPoolBytes = 256 * 1024

func (e *env) create(t *testing.T, name string) *Pool {
	t.Helper()
	p, err := e.h.Create(name, testPoolBytes)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func TestNewHeapValidation(t *testing.T) {
	as := vm.NewAddressSpace(1)
	em := emit.New(trace.Discard{}, emit.Base)
	if _, err := NewHeap(as, NewStore(), em, nil); err == nil {
		t.Error("BASE heap without software translator must fail")
	}
}

func TestCreateOpenClose(t *testing.T) {
	e := newEnv(t, emit.Opt)
	p := e.create(t, "pool-a")
	if p.ID() == oid.NullPool {
		t.Error("pool id must be nonzero")
	}
	if p.Name() != "pool-a" || p.Size() != testPoolBytes {
		t.Error("pool metadata")
	}
	if _, err := e.h.Create("pool-a", testPoolBytes); err == nil {
		t.Error("duplicate create must fail")
	}
	if _, err := e.h.Open("pool-a"); err == nil {
		t.Error("double open must fail")
	}
	if e.h.OpenPools() != 1 {
		t.Errorf("open pools = %d", e.h.OpenPools())
	}
	id := p.ID()
	if err := e.h.Close(p); err != nil {
		t.Fatal(err)
	}
	p2, err := e.h.Open("pool-a")
	if err != nil {
		t.Fatal(err)
	}
	if p2.ID() != id {
		t.Error("pool id must be stable across close/open")
	}
	if _, err := e.h.Open("missing"); err == nil {
		t.Error("open of nonexistent pool must fail")
	}
	if _, err := e.h.Create("tiny", 100); err == nil {
		t.Error("sub-minimum pool must fail")
	}
}

func TestPoolIDsUniqueAndSystemWide(t *testing.T) {
	e := newEnv(t, emit.Opt)
	seen := map[oid.PoolID]bool{}
	for i := 0; i < 20; i++ {
		p, err := e.h.CreateSized(string(rune('a'+i)), 64*1024, 4096)
		if err != nil {
			t.Fatal(err)
		}
		if seen[p.ID()] {
			t.Fatalf("pool id %d reused", p.ID())
		}
		seen[p.ID()] = true
	}
	if e.store.Pools() != 20 {
		t.Errorf("store pools = %d", e.store.Pools())
	}
}

func TestDataPersistsAcrossCloseOpen(t *testing.T) {
	e := newEnv(t, emit.Opt)
	p := e.create(t, "p")
	o, err := e.h.Alloc(p, 16)
	if err != nil {
		t.Fatal(err)
	}
	ref, err := e.h.Deref(o, isa.RZ)
	if err != nil {
		t.Fatal(err)
	}
	if err := ref.Store64(0, 0xfeedface, isa.RZ); err != nil {
		t.Fatal(err)
	}
	if err := e.h.Close(p); err != nil {
		t.Fatal(err)
	}
	p, err = e.h.Open("p")
	if err != nil {
		t.Fatal(err)
	}
	ref, err = e.h.Deref(o, isa.RZ)
	if err != nil {
		t.Fatal(err)
	}
	w, err := ref.Load64(0)
	if err != nil {
		t.Fatal(err)
	}
	if w.V != 0xfeedface {
		t.Errorf("data lost across close/open: %#x", w.V)
	}
	// The new mapping is (almost certainly) at a different ASLR address,
	// yet the ObjectID still resolves: relocatability.
}

func TestDerefModes(t *testing.T) {
	// OPT: field accesses are nvld/nvst carrying ObjectIDs.
	e := newEnv(t, emit.Opt)
	p := e.create(t, "p")
	o, _ := e.h.Alloc(p, 32)
	before := len(e.buf.Instrs)
	ref, _ := e.h.Deref(o, isa.RZ)
	if len(e.buf.Instrs) != before {
		t.Error("OPT Deref must emit nothing")
	}
	ref.Store64(8, 42, isa.RZ)
	last := e.buf.Instrs[len(e.buf.Instrs)-1]
	if last.Op != isa.NVStore || last.Addr != uint64(o.FieldAt(8)) {
		t.Errorf("OPT store = %v", last)
	}
	w, _ := ref.Load64(8)
	if w.V != 42 {
		t.Errorf("functional readback = %d", w.V)
	}
	last = e.buf.Instrs[len(e.buf.Instrs)-1]
	if last.Op != isa.NVLoad {
		t.Errorf("OPT load = %v", last)
	}

	// BASE: Deref emits oid_direct, field accesses are regular ld/st.
	eb := newEnv(t, emit.Base)
	pb := eb.create(t, "p")
	ob, _ := eb.h.Alloc(pb, 32)
	before = len(eb.buf.Instrs)
	refb, err := eb.h.Deref(ob, isa.RZ)
	if err != nil {
		t.Fatal(err)
	}
	if len(eb.buf.Instrs) == before {
		t.Error("BASE Deref must emit the translation sequence")
	}
	refb.Store64(8, 43, isa.RZ)
	last = eb.buf.Instrs[len(eb.buf.Instrs)-1]
	if last.Op != isa.Store {
		t.Errorf("BASE store = %v", last)
	}
	wb, _ := refb.Load64(8)
	if wb.V != 43 {
		t.Errorf("BASE functional readback = %d", wb.V)
	}
}

func TestReadWriteBytes(t *testing.T) {
	e := newEnv(t, emit.Opt)
	p := e.create(t, "p")
	o, _ := e.h.Alloc(p, 64)
	ref, _ := e.h.Deref(o, isa.RZ)
	data := make([]byte, 40)
	for i := range data {
		data[i] = byte(i * 3)
	}
	if err := ref.WriteBytes(8, data); err != nil {
		t.Fatal(err)
	}
	got := make([]byte, 40)
	if err := ref.ReadBytes(8, got); err != nil {
		t.Fatal(err)
	}
	for i := range data {
		if got[i] != data[i] {
			t.Fatalf("byte %d: %d != %d", i, got[i], data[i])
		}
	}
}

func TestDerefClosedPoolFails(t *testing.T) {
	e := newEnv(t, emit.Opt)
	p := e.create(t, "p")
	o, _ := e.h.Alloc(p, 16)
	e.h.Close(p)
	if _, err := e.h.Deref(o, isa.RZ); err == nil {
		t.Error("deref into closed pool must fail")
	}
}

func TestAllocBasics(t *testing.T) {
	e := newEnv(t, emit.Opt)
	p := e.create(t, "p")
	a, err := e.h.Alloc(p, 16)
	if err != nil {
		t.Fatal(err)
	}
	b, err := e.h.Alloc(p, 16)
	if err != nil {
		t.Fatal(err)
	}
	if a == b {
		t.Error("allocations must be distinct")
	}
	if a.Pool() != p.ID() {
		t.Error("allocation must be in the requested pool")
	}
	if _, err := e.h.Alloc(p, 0); err == nil {
		t.Error("zero-size alloc must fail")
	}
	// Distinct allocations never overlap (16-byte class).
	d := a.Distance(b)
	if d < 0 {
		d = -d
	}
	if d < 16 {
		t.Errorf("allocations overlap: distance %d", d)
	}
}

func TestFreeAndReuse(t *testing.T) {
	e := newEnv(t, emit.Opt)
	p := e.create(t, "p")
	a, _ := e.h.Alloc(p, 64)
	if err := e.h.Free(a); err != nil {
		t.Fatal(err)
	}
	b, _ := e.h.Alloc(p, 64)
	if a != b {
		t.Errorf("freed block must be reused: %v then %v", a, b)
	}
	// LIFO reuse within a class.
	c, _ := e.h.Alloc(p, 64)
	e.h.Free(b)
	e.h.Free(c)
	d, _ := e.h.Alloc(p, 64)
	if d != c {
		t.Errorf("free list must be LIFO: freed %v last, got %v", c, d)
	}
	// Freeing junk fails.
	if err := e.h.Free(oid.New(p.ID(), 4)); err == nil {
		t.Error("free of non-heap offset must fail")
	}
	if err := e.h.Free(oid.New(9999, 64)); err == nil {
		t.Error("free in unknown pool must fail")
	}
}

func TestAllocSizeClassesDoNotMix(t *testing.T) {
	e := newEnv(t, emit.Opt)
	p := e.create(t, "p")
	small, _ := e.h.Alloc(p, 16)
	e.h.Free(small)
	big, _ := e.h.Alloc(p, 1024)
	if big == small {
		t.Error("1024-byte alloc must not reuse a 16-byte block")
	}
}

func TestAllocOOM(t *testing.T) {
	e := newEnv(t, emit.Opt)
	p, err := e.h.CreateSized("small", MinPoolBytes(4096), 4096)
	if err != nil {
		t.Fatal(err)
	}
	var last error
	for i := 0; i < 10000; i++ {
		if _, last = e.h.Alloc(p, 128); last != nil {
			break
		}
	}
	if last == nil {
		t.Error("pool must eventually run out of memory")
	}
}

func TestLargeAllocation(t *testing.T) {
	e := newEnv(t, emit.Opt)
	p := e.create(t, "p")
	o, err := e.h.Alloc(p, 10000) // beyond the largest class
	if err != nil {
		t.Fatal(err)
	}
	ref, _ := e.h.Deref(o, isa.RZ)
	if err := ref.Store64(9992, 7, isa.RZ); err != nil {
		t.Fatal(err)
	}
	// Freeing a large block is accepted (dropped).
	if err := e.h.Free(o); err != nil {
		t.Fatal(err)
	}
}

func TestRoot(t *testing.T) {
	e := newEnv(t, emit.Opt)
	p := e.create(t, "p")
	r1, err := e.h.Root(p, 64)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := e.h.Root(p, 64)
	if err != nil {
		t.Fatal(err)
	}
	if r1 != r2 {
		t.Error("root must be stable")
	}
	if _, err := e.h.Root(p, 4096); err == nil {
		t.Error("requesting a larger root than created must fail")
	}
	// Root survives close/open.
	e.h.Close(p)
	p, _ = e.h.Open("p")
	r3, err := e.h.Root(p, 64)
	if err != nil || r3 != r1 {
		t.Errorf("root after reopen = %v, %v", r3, err)
	}
}

func TestPersistEmitsCLWBs(t *testing.T) {
	e := newEnv(t, emit.Opt)
	p := e.create(t, "p")
	o, _ := e.h.Alloc(p, 256)
	before := len(e.buf.Instrs)
	if err := e.h.Persist(o, 200); err != nil {
		t.Fatal(err)
	}
	var clwbs, fences int
	for _, in := range e.buf.Instrs[before:] {
		switch in.Op {
		case isa.CLWB:
			clwbs++
		case isa.SFence:
			fences++
		}
	}
	// 200 bytes from an arbitrary offset covers 4 cache lines (possibly
	// straddling), and exactly one fence.
	if clwbs < 4 || clwbs > 5 {
		t.Errorf("CLWBs = %d, want 4..5", clwbs)
	}
	if fences != 1 {
		t.Errorf("fences = %d", fences)
	}
	// Zero-size persist is a fence only.
	before = len(e.buf.Instrs)
	e.h.Persist(o, 0)
	if n := len(e.buf.Instrs) - before; n != 1 {
		t.Errorf("zero persist emitted %d instructions", n)
	}
}

func TestDirectOnlyInBase(t *testing.T) {
	e := newEnv(t, emit.Opt)
	p := e.create(t, "p")
	o, _ := e.h.Alloc(p, 16)
	if _, err := e.h.Direct(o); err == nil {
		t.Error("Direct in OPT mode must fail")
	}
	eb := newEnv(t, emit.Base)
	pb := eb.create(t, "p")
	ob, _ := eb.h.Alloc(pb, 16)
	va, err := eb.h.Direct(ob)
	if err != nil {
		t.Fatal(err)
	}
	want := pb.Base() + uint64(ob.Offset())
	if va != want {
		t.Errorf("Direct = %#x, want %#x", va, want)
	}
}

func TestTxCommit(t *testing.T) {
	e := newEnv(t, emit.Opt)
	p := e.create(t, "p")
	o, _ := e.h.Alloc(p, 16)
	ref, _ := e.h.Deref(o, isa.RZ)
	ref.Store64(0, 1, isa.RZ)

	if err := e.h.TxBegin(p); err != nil {
		t.Fatal(err)
	}
	if !e.h.InTx() {
		t.Error("InTx must be true")
	}
	if err := e.h.TxAddRange(o, 16); err != nil {
		t.Fatal(err)
	}
	ref.Store64(0, 2, isa.RZ)
	if err := e.h.TxEnd(); err != nil {
		t.Fatal(err)
	}
	w, _ := ref.Load64(0)
	if w.V != 2 {
		t.Errorf("committed value = %d", w.V)
	}
	if e.h.NeedsRecovery(p) {
		t.Error("committed pool must not need recovery")
	}
}

func TestTxAbortRestores(t *testing.T) {
	e := newEnv(t, emit.Opt)
	p := e.create(t, "p")
	o, _ := e.h.Alloc(p, 16)
	ref, _ := e.h.Deref(o, isa.RZ)
	ref.Store64(0, 111, isa.RZ)
	ref.Store64(8, 222, isa.RZ)

	e.h.TxBegin(p)
	e.h.TxAddRange(o, 16)
	ref.Store64(0, 999, isa.RZ)
	ref.Store64(8, 888, isa.RZ)
	if err := e.h.TxAbort(); err != nil {
		t.Fatal(err)
	}
	w0, _ := ref.Load64(0)
	w8, _ := ref.Load64(8)
	if w0.V != 111 || w8.V != 222 {
		t.Errorf("abort must restore: %d, %d", w0.V, w8.V)
	}
	if e.h.InTx() {
		t.Error("no tx after abort")
	}
}

func TestTxAllocUndoneOnAbort(t *testing.T) {
	e := newEnv(t, emit.Opt)
	p := e.create(t, "p")
	e.h.TxBegin(p)
	o, err := e.h.TxAlloc(p, 64)
	if err != nil {
		t.Fatal(err)
	}
	e.h.TxAbort()
	// The aborted allocation's block must be back on the free list.
	o2, _ := e.h.Alloc(p, 64)
	if o2 != o {
		t.Errorf("aborted tx_pmalloc block not reclaimed: %v vs %v", o, o2)
	}
}

func TestTxFreeDeferred(t *testing.T) {
	e := newEnv(t, emit.Opt)
	p := e.create(t, "p")
	o, _ := e.h.Alloc(p, 64)
	ref, _ := e.h.Deref(o, isa.RZ)
	ref.Store64(0, 7, isa.RZ)

	// Abort: the free never happens.
	e.h.TxBegin(p)
	e.h.TxFree(o)
	e.h.TxAbort()
	w, _ := ref.Load64(0)
	if w.V != 7 {
		t.Error("aborted tx_pfree must not free")
	}

	// Commit: the free applies.
	e.h.TxBegin(p)
	e.h.TxFree(o)
	e.h.TxEnd()
	o2, _ := e.h.Alloc(p, 64)
	if o2 != o {
		t.Errorf("committed tx_pfree must recycle the block: %v vs %v", o, o2)
	}
}

func TestTxErrors(t *testing.T) {
	e := newEnv(t, emit.Opt)
	p := e.create(t, "p")
	o, _ := e.h.Alloc(p, 16)
	if err := e.h.TxAddRange(o, 16); err == nil {
		t.Error("tx_add_range outside tx must fail")
	}
	if _, err := e.h.TxAlloc(p, 16); err == nil {
		t.Error("tx_pmalloc outside tx must fail")
	}
	if err := e.h.TxFree(o); err == nil {
		t.Error("tx_pfree outside tx must fail")
	}
	if err := e.h.TxEnd(); err == nil {
		t.Error("tx_end outside tx must fail")
	}
	if err := e.h.TxAbort(); err == nil {
		t.Error("tx_abort outside tx must fail")
	}
	e.h.TxBegin(p)
	if err := e.h.TxBegin(p); err == nil {
		t.Error("nested tx must fail")
	}
	if err := e.h.Close(p); err == nil {
		t.Error("closing a pool with an active tx must fail")
	}
	e.h.TxEnd()
}

func TestTxLogFull(t *testing.T) {
	e := newEnv(t, emit.Opt)
	p, err := e.h.CreateSized("p", 1<<20, 4096)
	if err != nil {
		t.Fatal(err)
	}
	o, _ := e.h.Alloc(p, 2048)
	e.h.TxBegin(p)
	var last error
	for i := 0; i < 100; i++ {
		if last = e.h.TxAddRange(o, 2048); last != nil {
			break
		}
	}
	if last == nil {
		t.Error("undo log must eventually fill")
	}
	e.h.TxAbort()
}

func TestCrashRecovery(t *testing.T) {
	as := vm.NewAddressSpace(7)
	store := NewStore()
	e := attach(t, as, store, emit.Opt)
	p := e.create(t, "p")
	o, _ := e.h.Alloc(p, 16)
	ref, _ := e.h.Deref(o, isa.RZ)
	ref.Store64(0, 1000, isa.RZ)
	e.h.Persist(o, 16)

	// Start a transaction, snapshot, scribble, then crash mid-flight.
	e.h.TxBegin(p)
	e.h.TxAddRange(o, 16)
	ref.Store64(0, 2000, isa.RZ)
	if _, err := e.h.Crash(nvmsim.DropAllPolicy()); err != nil {
		t.Fatal(err)
	}

	// A fresh process attaches to the same store.
	e2 := attach(t, as, store, emit.Opt)
	p2, err := e2.h.Open("p")
	if err != nil {
		t.Fatal(err)
	}
	if !e2.h.NeedsRecovery(p2) {
		t.Fatal("interrupted transaction must be detected")
	}
	if err := e2.h.Recover(p2); err != nil {
		t.Fatal(err)
	}
	ref2, _ := e2.h.Deref(o, isa.RZ)
	w, _ := ref2.Load64(0)
	if w.V != 1000 {
		t.Errorf("recovery must restore the snapshot: got %d", w.V)
	}
	if e2.h.NeedsRecovery(p2) {
		t.Error("recovered pool must be clean")
	}
	// Recover on a clean pool is a no-op.
	if err := e2.h.Recover(p2); err != nil {
		t.Fatal(err)
	}
}

func TestCrashRecoveryUndoesAllocs(t *testing.T) {
	as := vm.NewAddressSpace(9)
	store := NewStore()
	e := attach(t, as, store, emit.Opt)
	p := e.create(t, "p")
	e.h.TxBegin(p)
	o, _ := e.h.TxAlloc(p, 64)
	e.h.Crash(nvmsim.DropAllPolicy())

	e2 := attach(t, as, store, emit.Opt)
	p2, _ := e2.h.Open("p")
	if err := e2.h.Recover(p2); err != nil {
		t.Fatal(err)
	}
	// The block from the interrupted allocation is reusable again.
	o2, _ := e2.h.Alloc(p2, 64)
	if o2 != o {
		t.Errorf("recovered allocation must be reclaimed: %v vs %v", o, o2)
	}
}

func TestBaseAndOptComputeIdenticalState(t *testing.T) {
	// The same program in BASE and OPT modes must produce bit-identical
	// pool contents; only the instruction streams differ — and OPT must
	// be much shorter (the paper's 43.9% dynamic-instruction reduction).
	run := func(mode emit.Mode) (*env, *Pool, oid.OID, uint64) {
		as := vm.NewAddressSpace(11)
		e := attach(t, as, NewStore(), mode)
		p := e.create(t, "p")
		root, err := e.h.Root(p, 64)
		if err != nil {
			t.Fatal(err)
		}
		e.h.TxBegin(p)
		e.h.TxAddRange(root, 64)
		ref, _ := e.h.Deref(root, isa.RZ)
		for i := uint32(0); i < 8; i++ {
			ref.Store64(i*8, uint64(i*i), isa.RZ)
		}
		e.h.TxEnd()
		return e, p, root, e.h.Emit.Count()
	}
	eb, pb, rb, nBase := run(emit.Base)
	eo, po, ro, nOpt := run(emit.Opt)
	if rb != ro {
		t.Fatalf("allocation layout diverged: %v vs %v", rb, ro)
	}
	refB, _ := eb.h.Deref(rb, isa.RZ)
	refO, _ := eo.h.Deref(ro, isa.RZ)
	for i := uint32(0); i < 8; i++ {
		wb, _ := refB.Load64(i * 8)
		wo, _ := refO.Load64(i * 8)
		if wb.V != wo.V {
			t.Errorf("word %d: BASE %d vs OPT %d", i, wb.V, wo.V)
		}
	}
	if nOpt >= nBase {
		t.Errorf("OPT (%d insns) must be shorter than BASE (%d)", nOpt, nBase)
	}
	_ = pb
	_ = po
}

func TestSoftStatsExposedThroughHeap(t *testing.T) {
	e := newEnv(t, emit.Base)
	p := e.create(t, "p")
	o, _ := e.h.Alloc(p, 16)
	for i := 0; i < 10; i++ {
		e.h.Deref(o, isa.RZ)
	}
	s := e.h.Soft.Stats()
	if s.Calls == 0 || s.InsnsPerCall() < 17 {
		t.Errorf("soft stats = %+v", s)
	}
}

func TestStoreDelete(t *testing.T) {
	e := newEnv(t, emit.Opt)
	p := e.create(t, "p")
	if err := e.store.Delete("p"); err == nil {
		t.Error("deleting an open pool must fail")
	}
	e.h.Close(p)
	if err := e.store.Delete("p"); err != nil {
		t.Fatal(err)
	}
	if err := e.store.Delete("p"); err == nil {
		t.Error("double delete must fail")
	}
	if e.store.Exists("p") {
		t.Error("deleted pool must not exist")
	}
}
