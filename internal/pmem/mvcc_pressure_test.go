package pmem

import (
	"math/rand"
	"testing"

	"potgo/internal/isa"
	"potgo/internal/oid"
)

// mvccPutTB is mvccPut for tests and benchmarks alike (testing.TB).
func mvccPutTB(tb testing.TB, sh *Sharded, p *Pool, o oid.OID, val uint64) oid.OID {
	tb.Helper()
	err := sh.Tx(p, nil, func(tx *Tx) error {
		if o.IsNull() {
			var err error
			if o, err = tx.Alloc(p, 16); err != nil {
				return err
			}
		} else if err := tx.AddRange(o, 16); err != nil {
			return err
		}
		ref, err := sh.Heap().Deref(o, isa.RZ)
		if err != nil {
			return err
		}
		return ref.Store64(0, val, isa.RZ)
	})
	if err != nil {
		tb.Fatalf("mvccPutTB: %v", err)
	}
	return o
}

// TestMVCCHotKeyChainBounded: a pinned reader makes a write-hot object's
// version chain grow without bound — Reclaim must not free versions the
// pin can still see — and releasing the pin lets one Reclaim prune the
// chain back to O(1). This is the memory-pressure contract hot-key
// workloads rely on.
func TestMVCCHotKeyChainBounded(t *testing.T) {
	sh, p, o := newMVCCEnv(t)
	m := sh.MVCC()

	pin := m.Pin()
	if pin == nil {
		t.Fatal("Pin returned nil on an empty registry")
	}
	const writes = 200
	for i := 0; i < writes; i++ {
		mvccPut(t, sh, p, o, uint64(i+2))
		if i%32 == 0 {
			m.Reclaim() // must be a no-op below the pinned epoch
		}
	}
	// Every superseded version died after the pin's epoch, so the chain
	// holds (roughly) every write while the pin lives.
	if got := m.ChainLen(o); got < writes/2 {
		t.Fatalf("chain length %d under a held pin, expected ~%d (reclaim freed pinned versions?)", got, writes+1)
	}
	m.Reclaim()
	if got := m.ChainLen(o); got < writes/2 {
		t.Fatalf("chain length %d after Reclaim under a held pin", got)
	}

	// Pin released: the next sweep prunes everything invisible to future
	// readers — the current version plus at most the one visible at the
	// sweep's epoch floor.
	m.Unpin(pin)
	if freed := m.Reclaim(); freed < writes/2 {
		t.Fatalf("Reclaim freed %d versions after release, want >= %d", freed, writes/2)
	}
	if got := m.ChainLen(o); got > 2 {
		t.Fatalf("chain length %d after release+Reclaim, want <= 2", got)
	}
	if got := m.MaxChainLen(); got > 2 {
		t.Fatalf("max chain length %d after release+Reclaim, want <= 2", got)
	}
}

// BenchmarkMVCCHotKeyZipf measures the version-chain memory pressure of a
// zipfian write workload (one object takes most of the writes) while a
// reader pin is held for fixed windows, forcing chains to accumulate
// between reclaims. Reports the peak chain length alongside ns/op, and
// fails if the final release + Reclaim does not collapse the hot chain.
func BenchmarkMVCCHotKeyZipf(b *testing.B) {
	sh, err := NewSharded(NewStore(), 4, 1)
	if err != nil {
		b.Fatalf("NewSharded: %v", err)
	}
	p, err := sh.Create("p", 8<<20)
	if err != nil {
		b.Fatalf("Create: %v", err)
	}
	sh.EnableMVCC(p)
	m := sh.MVCC()

	const objects = 64
	oids := make([]oid.OID, objects)
	for i := range oids {
		oids[i] = mvccPutTB(b, sh, p, oid.Null, uint64(i))
	}
	rng := rand.New(rand.NewSource(1))
	zipf := rand.NewZipf(rng, 1.2, 1, objects-1)

	// One pin held per 256-write window: versions pile up during the
	// window, the release + Reclaim prunes them, a fresh pin opens the
	// next window.
	pin := m.Pin()
	if pin == nil {
		b.Fatal("Pin returned nil on an empty registry")
	}
	held, maxChain := 0, 0
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		mvccPutTB(b, sh, p, oids[zipf.Uint64()], uint64(i))
		held++
		if held == 256 {
			if c := m.MaxChainLen(); c > maxChain {
				maxChain = c
			}
			m.Unpin(pin)
			m.Reclaim()
			pin = m.Pin()
			held = 0
		}
	}
	b.StopTimer()
	if c := m.MaxChainLen(); c > maxChain {
		maxChain = c
	}
	m.Unpin(pin)
	m.Reclaim()
	b.ReportMetric(float64(maxChain), "peak-chain")
	if got := m.MaxChainLen(); got > 2 {
		b.Fatalf("max chain length %d after final release+Reclaim, want <= 2", got)
	}
}
