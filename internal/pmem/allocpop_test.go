package pmem

import (
	"testing"

	"potgo/internal/isa"
	"potgo/internal/nvmsim"
	"potgo/internal/vm"
)

// TestTxAllocPopDurableBeforeReuse pins the free-list reuse hazard the
// crash-injection engine found: a transactional allocation that pops a block
// from a free list hands the caller memory whose first payload word IS the
// free list's next pointer. The caller then persists new contents over it
// (persist-before-publish, invariant I2). If the head advance were still
// volatile at that point, a crash would revert the durable head onto a block
// whose next word is now object data — and recovery's membership walk, seeing
// the block at the head, would conclude "already threaded" and leave the
// corrupt chain in place. TxAlloc therefore persists the pop before
// returning; this test crashes in exactly that window and checks the free
// list survives.
func TestTxAllocPopDurableBeforeReuse(t *testing.T) {
	as, store, h, p := buildAllocPopWorld(t)

	// A durably freed block: committed tx_pfree threads it on its class
	// list with crash-safe ordering.
	victim, err := h.Alloc(p, 64)
	if err != nil {
		t.Fatal(err)
	}
	if err := h.TxBegin(p); err != nil {
		t.Fatal(err)
	}
	if err := h.TxFree(victim); err != nil {
		t.Fatal(err)
	}
	if err := h.TxEnd(); err != nil {
		t.Fatal(err)
	}
	if err := h.SyncPool(p); err != nil {
		t.Fatal(err)
	}

	// A new transaction reuses it and persists object data over the payload
	// — including the word that held the free list's next pointer.
	if err := h.TxBegin(p); err != nil {
		t.Fatal(err)
	}
	reused, err := h.TxAlloc(p, 64)
	if err != nil {
		t.Fatal(err)
	}
	if reused != victim {
		t.Fatalf("expected the freed block back, got %v (victim %v)", reused, victim)
	}
	ref, err := h.Deref(reused, isa.RZ)
	if err != nil {
		t.Fatal(err)
	}
	if err := ref.Store64(0, 0x1a, isa.RZ); err != nil { // a plausible key, not a block offset
		t.Fatal(err)
	}
	if err := h.Persist(reused, 64); err != nil {
		t.Fatal(err)
	}

	// Power fails before commit; nothing volatile survives.
	if _, err := h.Crash(nvmsim.DropAllPolicy()); err != nil {
		t.Fatal(err)
	}

	h2 := freshHeap(t, as, store)
	p2, err := h2.Open("ap")
	if err != nil {
		t.Fatal(err)
	}
	if err := h2.Recover(p2); err != nil {
		t.Fatal(err)
	}
	if err := h2.CheckPool(p2); err != nil {
		t.Fatal(err)
	}
	// The undone allocation is free again and allocatable.
	back, err := h2.Alloc(p2, 64)
	if err != nil {
		t.Fatal(err)
	}
	if back != victim {
		t.Fatalf("expected the undone block back on its free list, got %v (victim %v)", back, victim)
	}
	if err := h2.CheckPool(p2); err != nil {
		t.Fatal(err)
	}
}

// TestTxAllocPopCrashBetweenLogAndHeadPersist covers the other edge of the
// same window: the recAlloc record is durable but the head advance is not.
// Recovery's membership walk finds the block still on the list and must
// leave it exactly once — free, intact, allocatable.
func TestTxAllocPopCrashBetweenLogAndHeadPersist(t *testing.T) {
	as, store, h, p := buildAllocPopWorld(t)

	victim, err := h.Alloc(p, 64)
	if err != nil {
		t.Fatal(err)
	}
	if err := h.TxBegin(p); err != nil {
		t.Fatal(err)
	}
	if err := h.TxFree(victim); err != nil {
		t.Fatal(err)
	}
	if err := h.TxEnd(); err != nil {
		t.Fatal(err)
	}
	if err := h.SyncPool(p); err != nil {
		t.Fatal(err)
	}

	// Sweep every persistence event inside TxBegin+TxAlloc: each crash
	// point must recover to a pool where the victim is free exactly once.
	dry := func(h *Heap, p *Pool) error {
		if err := h.TxBegin(p); err != nil {
			return err
		}
		_, err := h.TxAlloc(p, 64)
		return err
	}
	base := h.NV.Events()
	if err := dry(h, p); err != nil {
		t.Fatal(err)
	}
	span := h.NV.Events() - base
	if span == 0 {
		t.Fatal("no persistence events in TxAlloc")
	}
	_ = as
	_ = store
	for e := base; e < base+span; e++ {
		as, store, h, p := buildAllocPopWorld(t)
		victim, err := h.Alloc(p, 64)
		if err != nil {
			t.Fatal(err)
		}
		if err := h.TxBegin(p); err != nil {
			t.Fatal(err)
		}
		if err := h.TxFree(victim); err != nil {
			t.Fatal(err)
		}
		if err := h.TxEnd(); err != nil {
			t.Fatal(err)
		}
		if err := h.SyncPool(p); err != nil {
			t.Fatal(err)
		}
		crashed := func() (crashed bool) {
			defer func() {
				if r := recover(); r != nil {
					if _, ok := nvmsim.AsCrashSignal(r); !ok {
						panic(r)
					}
					crashed = true
				}
			}()
			h.NV.Arm(e)
			defer h.NV.Disarm()
			if err := dry(h, p); err != nil {
				t.Fatal(err)
			}
			return false
		}()
		if !crashed {
			continue
		}
		if _, err := h.Crash(nvmsim.DropAllPolicy()); err != nil {
			t.Fatal(err)
		}
		h2 := freshHeap(t, as, store)
		p2, err := h2.Open("ap")
		if err != nil {
			t.Fatal(err)
		}
		if err := h2.Recover(p2); err != nil {
			t.Fatalf("event %d: recover: %v", e, err)
		}
		if err := h2.CheckPool(p2); err != nil {
			t.Fatalf("event %d: %v", e, err)
		}
		back, err := h2.Alloc(p2, 64)
		if err != nil {
			t.Fatalf("event %d: realloc: %v", e, err)
		}
		if back != victim {
			t.Fatalf("event %d: expected %v back, got %v", e, victim, back)
		}
		if err := h2.CheckPool(p2); err != nil {
			t.Fatalf("event %d: after realloc: %v", e, err)
		}
	}
}

func buildAllocPopWorld(t *testing.T) (*vm.AddressSpace, *Store, *Heap, *Pool) {
	t.Helper()
	as := vm.NewAddressSpace(77)
	store := NewStore()
	h := freshHeap(t, as, store)
	p, err := h.Create("ap", 256*1024)
	if err != nil {
		t.Fatal(err)
	}
	return as, store, h, p
}
