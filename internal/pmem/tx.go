package pmem

import (
	"encoding/binary"
	"fmt"
	"sync/atomic"

	"potgo/internal/isa"
	"potgo/internal/oid"
)

// Transaction support: write-ahead undo logging (paper §2.1.4).
//
// The undo log lives inside the transaction's pool, immediately after the
// header page. Its layout:
//
//	log[0]      count of valid records (0 = log empty / committed)
//	log[8]      state: active (undo on recovery) or committed (redo frees)
//	log[16]...  records, each: {kind, oid, size, data padded to 8 bytes}
//
// A record is persisted (CLWB + SFENCE) before the count that publishes it,
// so a crash can never observe a published-but-unwritten record. Commit
// first persists every range the transaction modified (plus the allocator
// metadata of every pool that served a transactional allocation), then —
// when the transaction holds deferred frees — durably sets the state word
// to committed before applying them, so a crash mid-commit redoes the frees
// instead of undoing a transaction whose data is already durable.
//
// Truncation must never expose (count>0, state=active) after the commit
// point, so it clears the count first and the state word second, each with
// its own fence; the intermediate (0, committed) state reads as a clean
// log and is swept by the next Recover or TxBegin.
//
// Transactions come in two shapes:
//
//   - Handle-based (Begin/Tx.Commit): each transaction is a *Tx bound to
//     the pool holding its undo log. Different pools may run transactions
//     concurrently — the heap only tracks which pools have a live log.
//     Callers in concurrent mode must hold the write locks of every shard
//     the transaction touches (see Sharded).
//   - Ambient (TxBegin/TxEnd, paper Table 1): the legacy single-threaded
//     API, a thin wrapper holding one implicit *Tx on the heap. All
//     existing workloads use it; its emission is bit-identical to the
//     pre-handle implementation.
const (
	recData  = 0 // snapshot of object bytes taken by tx_add_range
	recAlloc = 1 // allocation to undo on abort
	recFree  = 2 // free-intent to apply on commit
)

const recHeaderBytes = 24

// allocMetaBytes is the span of pool-header bytes holding the allocator's
// durable state: bump pointer, root slot and every free-list head. Commit
// persists it for each pool that served a transactional allocation, so the
// durable bump can never lag behind a durably published object.
const allocMetaBytes = offFreeHead + 8*uint32(len(sizeClasses))

type txRecord struct {
	kind uint64
	oid  oid.OID
	size uint32
	old  []byte // recData: the snapshotted bytes
}

type txState struct {
	pool     *Pool
	writeOff uint32 // next free byte in the log region (pool offset)
	records  []txRecord
	// snap is the snapshot arena: AddRange carves its undo images here
	// instead of allocating per call, and txRecord.old aliases the carve.
	// Reset (not freed) when the Tx is recycled, so a steady-state
	// transaction loop reaches zero heap allocations.
	snap []byte
	// allocPools is resolveAllocPools' reusable result slice.
	allocPools []*Pool
	// ftGroups is ftCommitSyncNoFence's reusable parity-group dedup scratch
	// (keys pool<<32|group), so fault-tolerant commits allocate nothing.
	ftGroups []uint64
}

// scratch carves n zeroed bytes from the snapshot arena. When the arena is
// full a larger one is started; carves handed out earlier keep aliasing the
// old backing array (the records that hold them pin it).
func (st *txState) scratch(n int) []byte {
	off := len(st.snap)
	if off+n > cap(st.snap) {
		st.snap = make([]byte, 0, 2*cap(st.snap)+n+256)
		off = 0
	}
	st.snap = st.snap[:off+n]
	b := st.snap[off : off+n]
	clear(b)
	return b
}

// Tx is one open transaction: an undo log in its pool plus the in-memory
// record mirror. A Tx is not itself goroutine-safe; concurrency comes from
// independent transactions on disjoint pools.
type Tx struct {
	h  *Heap
	st *txState
}

// Pool returns the pool holding the transaction's undo log.
func (t *Tx) Pool() *Pool { return t.st.pool }

// InTx reports whether an ambient (legacy API) transaction is active.
func (h *Heap) InTx() bool { return h.ambient != nil }

// Begin opens a handle-based transaction whose undo log lives in pool p.
// At most one transaction may be live per pool (the log is singular);
// nested transactions are not supported, matching the reduced API of paper
// Table 1.
func (h *Heap) Begin(p *Pool) (*Tx, error) {
	if _, ok := h.open[p.b.id]; !ok {
		return nil, fmt.Errorf("pmem: tx_begin on closed pool %q", p.b.name)
	}
	h.txMu.Lock()
	if h.txs[p.b.id] != nil {
		h.txMu.Unlock()
		return nil, fmt.Errorf("pmem: transaction already active on pool %q", p.b.name)
	}
	var t *Tx
	if n := len(h.txFree); n > 0 {
		t = h.txFree[n-1]
		h.txFree = h.txFree[:n-1]
		st := t.st
		st.pool = p
		st.writeOff = logStart + logOffRecords
		st.records = st.records[:0]
		st.snap = st.snap[:0]
		st.allocPools = st.allocPools[:0]
		st.ftGroups = st.ftGroups[:0]
	} else {
		t = &Tx{h: h, st: &txState{pool: p, writeOff: logStart + logOffRecords}}
	}
	h.txs[p.b.id] = t
	h.txMu.Unlock()
	// VerifyOnRead stands down while any transaction is live: checksums
	// are only brought up to date at commit.
	atomic.AddInt32(&h.txActive, 1)
	// A crash between the two truncation fences can leave a stale
	// committed marker behind an empty log; clear it before this
	// transaction publishes any record under it.
	if h.read64(p, logStart+logOffState) != txStateActive {
		if err := h.clearLogState(p); err != nil {
			h.releaseTx(t)
			return nil, err
		}
	}
	atomic.AddUint64(&h.Metrics.TxBegins, 1)
	h.Emit.Jump()
	h.Emit.Compute(txBeginWork)
	return t, nil
}

// releaseTx retires a transaction's pool-busy registration.
func (h *Heap) releaseTx(t *Tx) {
	h.txMu.Lock()
	if h.txs[t.st.pool.b.id] == t {
		delete(h.txs, t.st.pool.b.id)
		atomic.AddInt32(&h.txActive, -1)
	}
	h.txMu.Unlock()
}

// recycleTx hands a cleanly finished transaction back to Begin's free list.
// Only call after releaseTx, and never for a handle the caller may still
// use: the next Begin on any pool can return the same *Tx.
func (h *Heap) recycleTx(t *Tx) {
	h.txMu.Lock()
	if len(h.txFree) < 64 {
		h.txFree = append(h.txFree, t)
	}
	h.txMu.Unlock()
}

// poolBusy reports whether a transaction's undo log is live in pool p.
func (h *Heap) poolBusy(p *Pool) bool {
	h.txMu.Lock()
	_, busy := h.txs[p.b.id]
	h.txMu.Unlock()
	return busy
}

// dropAllTxs abandons every live transaction (crash: process state is gone).
func (h *Heap) dropAllTxs() {
	h.txMu.Lock()
	h.txs = make(map[oid.PoolID]*Tx)
	atomic.StoreInt32(&h.txActive, 0)
	h.txMu.Unlock()
	h.ambient = nil
}

// TxBegin starts an ambient transaction whose undo log lives in pool p
// (paper: tx_begin).
func (h *Heap) TxBegin(p *Pool) error {
	if h.ambient != nil {
		return fmt.Errorf("pmem: transaction already active on pool %q", h.ambient.st.pool.b.name)
	}
	t, err := h.Begin(p)
	if err != nil {
		return err
	}
	h.ambient = t
	return nil
}

// logAppend writes one record into the log, persists it, then publishes it
// by bumping and persisting the count.
//
//potlint:noalloc
func (t *Tx) logAppend(kind uint64, target oid.OID, size uint32, data []byte) error {
	h, st := t.h, t.st
	padded := (uint32(len(data)) + 7) &^ 7
	if uint64(st.writeOff)+recHeaderBytes+uint64(padded) > logStart+st.pool.b.logBytes {
		return fmt.Errorf("pmem: undo log of pool %q full", st.pool.b.name)
	}
	h.Emit.Jump() // call into the log layer
	h.Emit.Compute(txLogWork)
	recOID := st.pool.OID(st.writeOff)
	rec, err := h.Deref(recOID, isa.RZ)
	if err != nil {
		return err
	}
	if err := rec.Store64(0, kind, isa.RZ); err != nil {
		return err
	}
	if err := rec.Store64(8, uint64(target), isa.RZ); err != nil {
		return err
	}
	if err := rec.Store64(16, uint64(size), isa.RZ); err != nil {
		return err
	}
	if len(data) > 0 {
		// AddRange hands in an arena carve whose capacity already covers the
		// zeroed pad bytes; only a foreign caller pays for a padded copy.
		buf := data
		if uint32(len(buf)) != padded {
			if uint32(cap(buf)) >= padded {
				buf = buf[:padded]
			} else {
				buf = make([]byte, padded) //potlint:allow noalloc only a foreign caller pays the padded copy; AddRange hands in an arena carve
				copy(buf, data)
			}
		}
		if err := rec.WriteBytes(recHeaderBytes, buf); err != nil {
			return err
		}
	}
	// Write-ahead: record persists before it is published.
	if err := h.Persist(recOID, recHeaderBytes+padded); err != nil {
		return err
	}
	st.writeOff += recHeaderBytes + padded

	countOID := st.pool.OID(logStart + logOffCount)
	cnt, err := h.Deref(countOID, isa.RZ)
	if err != nil {
		return err
	}
	n := uint64(len(st.records) + 1)
	if err := cnt.Store64(0, n, isa.RZ); err != nil {
		return err
	}
	if err := h.Persist(countOID, 8); err != nil {
		return err
	}
	rcd := txRecord{kind: kind, oid: target, size: size}
	if len(data) > 0 {
		// The in-memory mirror aliases the arena carve (or the caller's
		// buffer); both live as long as the record does, so no copy.
		rcd.old = data
	}
	st.records = append(st.records, rcd) //potlint:allow noalloc record mirror is recycled across transactions; growth is amortized
	atomic.AddUint64(&h.Metrics.UndoRecords, 1)
	atomic.AddUint64(&h.Metrics.UndoBytes, recHeaderBytes+uint64(padded))
	return nil
}

// AddRange snapshots [o, o+size) into the undo log. Call it before
// modifying the range; commit makes the new contents durable, abort or
// recovery restores the snapshot.
//
//potlint:noalloc
func (t *Tx) AddRange(o oid.OID, size uint32) error {
	src, err := t.h.Deref(o, isa.RZ)
	if err != nil {
		return err
	}
	// Carve the snapshot from the transaction's arena, padded to the log's
	// 8-byte record granularity so logAppend can write it without a copy.
	padded := int((size + 7) &^ 7)
	old := t.st.scratch(padded)[:size] //potlint:allow noalloc arena doubles rarely; carves are recycled with the transaction
	if err := src.ReadBytes(0, old); err != nil {
		return err
	}
	return t.logAppend(recData, o, size, old)
}

// TxAddRange snapshots [o, o+size) into the ambient transaction's undo log
// (paper: tx_add_range).
func (h *Heap) TxAddRange(o oid.OID, size uint32) error {
	if h.ambient == nil {
		return fmt.Errorf("pmem: tx_add_range outside a transaction")
	}
	return h.ambient.AddRange(o, size)
}

// Alloc is a transactional allocation, undone if the transaction aborts.
// The paper's signature allocates from the transaction's pool; this
// implementation also accepts any open pool, which the multi-pool usage
// patterns (EACH/RANDOM) need. In concurrent mode the caller must hold the
// write lock of p's shard.
func (t *Tx) Alloc(p *Pool, size uint32) (oid.OID, error) {
	h := t.h
	// Write-ahead order: reserve the block first (span carve included — the
	// span publishes all-free, so it never needs undoing), persist the
	// recAlloc record, and only then flip the slot's occupancy bit. The bit
	// store stays volatile until commit, but the write-back cache can evict
	// — or a torn crash can retain — any unflushed line at any moment, so
	// the bit may reach the media the instant it is stored; flipping it
	// before the record is durable would let a crash in between leak the
	// slot forever (no record, nothing for recovery to clear). Recovery
	// decides the slot's fate from the bit, not from pointer threading
	// through the payload, so the pre-slab reuse hazard (durable free-list
	// head pointing at a block whose next word was overwritten with object
	// data) cannot arise and no extra fence is needed here.
	o, sp, slot, slab, err := h.allocReserve(p, size)
	if err != nil {
		return oid.Null, err
	}
	if err := t.logAppend(recAlloc, o, size, nil); err != nil {
		if slab {
			h.pushFree(p, o.Offset())
		}
		return oid.Null, err
	}
	if slab {
		if err := h.storeSlabBit(p, sp, slot, true); err != nil {
			return oid.Null, err
		}
	}
	return o, nil
}

// TxAlloc is tx_pmalloc on the ambient transaction.
func (h *Heap) TxAlloc(p *Pool, size uint32) (oid.OID, error) {
	if h.ambient == nil {
		return oid.Null, fmt.Errorf("pmem: tx_pmalloc outside a transaction")
	}
	return h.ambient.Alloc(p, size)
}

// Free logs a free-intent now and applies it at commit, so an abort leaves
// the object intact.
func (t *Tx) Free(o oid.OID) error {
	if _, ok := t.h.open[o.Pool()]; !ok {
		return fmt.Errorf("pmem: tx_pfree in unopened pool %d", o.Pool())
	}
	return t.logAppend(recFree, o, 0, nil)
}

// TxFree is tx_pfree on the ambient transaction.
func (h *Heap) TxFree(o oid.OID) error {
	if h.ambient == nil {
		return fmt.Errorf("pmem: tx_pfree outside a transaction")
	}
	return h.ambient.Free(o)
}

// resolveAllocPools returns the pools that served the transaction's
// allocations, in first-allocation order (deterministic emission order
// matters: the same program must produce a bit-identical instruction stream
// on every run). Resolution happens before commit/abort emit anything, so
// a closed pool fails the operation cleanly.
func (h *Heap) resolveAllocPools(st *txState, op string) ([]*Pool, error) {
	// Dedup by linear scan of the result (a handful of pools at most) into
	// the txState's reusable slice, so commit allocates nothing.
	pools := st.allocPools[:0]
outer:
	for _, r := range st.records {
		if r.kind != recAlloc {
			continue
		}
		for _, q := range pools {
			if q.b.id == r.oid.Pool() {
				continue outer
			}
		}
		p, ok := h.open[r.oid.Pool()]
		if !ok {
			return nil, fmt.Errorf("pmem: %s: alloc pool %d closed mid-transaction", op, r.oid.Pool())
		}
		pools = append(pools, p)
	}
	st.allocPools = pools
	return pools, nil
}

// Commit commits the transaction: all snapshotted ranges and transactional
// allocations are persisted (one fence for the batch), the allocator
// metadata of every pool that served an allocation is persisted, deferred
// frees are applied durably under a committed-state marker, and the log is
// truncated. On error the transaction stays open.
//
//potlint:noalloc
func (t *Tx) Commit() error {
	h, st := t.h, t.st
	allocPools, err := h.resolveAllocPools(st, "tx_end") //potlint:allow noalloc alloc-pool set is recycled with the tx state; growth is amortized
	if err != nil {
		return err
	}
	h.Emit.Jump()
	h.Emit.Compute(txEndWork)
	fence := false
	hasFree := false
	for _, r := range st.records {
		switch r.kind {
		case recData:
			if err := h.persistNoFence(r.oid, r.size); err != nil {
				return err
			}
			fence = true
		case recAlloc:
			if err := h.persistNoFence(r.oid, r.size); err != nil {
				return err
			}
			// The slot's occupancy bit (set volatile at Alloc) must reach
			// durability with the commit: persist the span's bitmap word.
			ap := h.open[r.oid.Pool()]
			if idx, _, ok := ap.alloc.lookup(r.oid.Offset()); ok { //potlint:allow noalloc lookup's search closure does not escape
				bmOID := ap.OID(ap.alloc.spans[idx].base + spanOffBitmap)
				if err := h.persistNoFence(bmOID, 8); err != nil {
					return err
				}
			}
			fence = true
		case recFree:
			hasFree = true
		}
	}
	for _, p := range allocPools {
		if err := h.persistNoFence(p.OID(0), allocMetaBytes); err != nil {
			return err
		}
		fence = true
	}
	if h.ftPools > 0 {
		// Bring checksums and parity of touched fault-tolerant pools up to
		// date under the same fence as the data they describe.
		synced, err := h.ftCommitSyncNoFence(st)
		if err != nil {
			return err
		}
		fence = fence || synced
	}
	if fence {
		// One fence covers every range this transaction touched — and, in
		// concurrent mode, every simultaneously-committing transaction's
		// ranges too (group commit, see Heap.fence).
		h.fence() //potlint:allow noalloc group-commit bookkeeping boxes a waiter only when commits overlap
	}
	if hasFree {
		// Commit point with deferred work: once the committed marker is
		// durable, a crash redoes the frees instead of undoing the
		// transaction.
		if err := h.setLogCommitted(st.pool); err != nil {
			return err
		}
		for _, r := range st.records {
			if r.kind == recFree {
				if err := h.freeDurable(r.oid); err != nil {
					return err
				}
			}
		}
	}
	if err := h.truncateLog(st.pool); err != nil {
		return err
	}
	if h.mvcc != nil {
		// Publish post-images after the commit point and before the Tx is
		// recycled; the epoch advance inside is the transaction's
		// visibility point for snapshot readers.
		if err := h.mvccPublish(st); err != nil {
			h.releaseTx(t)
			h.recycleTx(t)
			return err
		}
	}
	h.releaseTx(t)
	h.recycleTx(t) //potlint:allow noalloc tx free list grows amortized to the peak concurrency
	atomic.AddUint64(&h.Metrics.TxCommits, 1)
	return nil
}

// TxEnd commits the ambient transaction (paper: tx_end).
func (h *Heap) TxEnd() error {
	if h.ambient == nil {
		return fmt.Errorf("pmem: tx_end outside a transaction")
	}
	if err := h.ambient.Commit(); err != nil {
		return err
	}
	h.ambient = nil
	return nil
}

// Abort rolls the transaction back in place: snapshots are restored,
// transactional allocations are freed, deferred frees are dropped. The
// allocator metadata of alloc pools is persisted first so that the free
// list can never durably reference a block above the durable bump pointer.
func (t *Tx) Abort() error {
	h, st := t.h, t.st
	allocPools, err := h.resolveAllocPools(st, "tx_abort")
	if err != nil {
		return err
	}
	if len(allocPools) > 0 {
		for _, p := range allocPools {
			if err := h.persistNoFence(p.OID(0), allocMetaBytes); err != nil {
				return err
			}
		}
		h.fence()
	}
	for i := len(st.records) - 1; i >= 0; i-- {
		if err := h.undoRecord(st.records[i]); err != nil {
			return err
		}
	}
	if h.ftPools > 0 {
		// The rollback rewrote object bytes (and freed transactional
		// allocations whose payloads keep whatever the tx stored), so the
		// derived checksum and parity state must follow.
		synced, err := h.ftCommitSyncNoFence(st)
		if err != nil {
			return err
		}
		if synced {
			h.fence()
		}
	}
	if err := h.truncateLog(st.pool); err != nil {
		return err
	}
	h.releaseTx(t)
	h.recycleTx(t)
	atomic.AddUint64(&h.Metrics.TxAborts, 1)
	return nil
}

// TxAbort rolls the ambient transaction back (paper has no abort in
// Table 1; libpmemobj does).
func (h *Heap) TxAbort() error {
	if h.ambient == nil {
		return fmt.Errorf("pmem: tx_abort outside a transaction")
	}
	if err := h.ambient.Abort(); err != nil {
		return err
	}
	h.ambient = nil
	return nil
}

func (h *Heap) undoRecord(r txRecord) error {
	switch r.kind {
	case recData:
		dst, err := h.Deref(r.oid, isa.RZ)
		if err != nil {
			return err
		}
		buf := make([]byte, (len(r.old)+7)&^7)
		copy(buf, r.old)
		if err := dst.WriteBytes(0, buf); err != nil {
			return err
		}
		return h.Persist(r.oid, r.size)
	case recAlloc:
		return h.freeDurable(r.oid)
	case recFree:
		return nil // never applied
	default:
		return fmt.Errorf("pmem: corrupt undo record kind %d", r.kind)
	}
}

// setLogCommitted durably marks the log's records as describing a committed
// transaction whose deferred frees must be redone, not undone.
func (h *Heap) setLogCommitted(p *Pool) error {
	st := h.DirectRef(p, logStart+logOffState)
	if err := st.Store64(0, txStateCommitted, isa.RZ); err != nil {
		return err
	}
	return h.Persist(p.OID(logStart+logOffState), 8)
}

// clearLogState durably resets the state word to active.
func (h *Heap) clearLogState(p *Pool) error {
	st := h.DirectRef(p, logStart+logOffState)
	if err := st.Store64(0, txStateActive, isa.RZ); err != nil {
		return err
	}
	return h.Persist(p.OID(logStart+logOffState), 8)
}

// truncateLog retires the log: count first, then the state word, each under
// its own fence. The order matters — clearing state first could expose
// (count>0, active) for a committed transaction, which recovery would undo.
func (h *Heap) truncateLog(p *Pool) error {
	cnt := h.DirectRef(p, logStart+logOffCount)
	if err := cnt.Store64(0, 0, isa.RZ); err != nil {
		return err
	}
	if err := h.Persist(p.OID(logStart+logOffCount), 8); err != nil {
		return err
	}
	if h.read64(p, logStart+logOffState) != txStateActive {
		return h.clearLogState(p)
	}
	return nil
}

// Recover replays the pool's undo log after a crash (pool just reopened).
// An active log means the transaction never committed: its effects are
// rolled back in reverse order (allocations that never became durable are
// skipped). A committed log means every modified range is already durable
// and only the deferred frees may be half-applied: they are redone
// idempotently. Either way the log is then truncated. Records that
// reference other pools require those pools to be open.
//
// Recover persists everything it writes, so running it again — or crashing
// in the middle and running it again — converges to the same durable bytes.
func (h *Heap) Recover(p *Pool) error {
	// Recovery dereferences objects whose checksums are not yet restored;
	// stand VerifyOnRead down for the duration.
	atomic.AddInt32(&h.txActive, 1)
	defer atomic.AddInt32(&h.txActive, -1)
	count := h.read64(p, logStart+logOffCount)
	state := h.read64(p, logStart+logOffState)
	if count == 0 {
		if state != txStateActive {
			// Crash between the two truncation fences: the records are
			// gone, only the stale marker remains.
			return h.clearLogState(p)
		}
		return nil
	}
	// Parse the records straight from the persisted log bytes.
	type parsed struct {
		kind uint64
		oid  oid.OID
		size uint32
		old  []byte
	}
	var recs []parsed
	off := uint64(logStart + logOffRecords)
	for i := uint64(0); i < count; i++ {
		hdr := make([]byte, recHeaderBytes)
		if err := h.AS.ReadAt(p.region.Base+off, hdr); err != nil {
			return fmt.Errorf("pmem: recover %q: %w", p.b.name, err)
		}
		kind := binary.LittleEndian.Uint64(hdr[0:])
		target := oid.OID(binary.LittleEndian.Uint64(hdr[8:]))
		size := uint32(binary.LittleEndian.Uint64(hdr[16:]))
		padded := uint64((size + 7) &^ 7)
		var old []byte
		if kind == recData {
			old = make([]byte, padded)
			if err := h.AS.ReadAt(p.region.Base+off+recHeaderBytes, old); err != nil {
				return fmt.Errorf("pmem: recover %q: %w", p.b.name, err)
			}
			old = old[:size]
		}
		if kind == recAlloc {
			padded = 0
		}
		if kind == recFree {
			padded = 0
		}
		recs = append(recs, parsed{kind: kind, oid: target, size: size, old: old})
		off += recHeaderBytes + padded
	}
	if state == txStateCommitted {
		// Redo: data and allocations were persisted before the marker;
		// only the deferred frees need (re-)applying.
		for _, r := range recs {
			if r.kind == recFree {
				if err := h.recoverFree(r.oid); err != nil {
					return err
				}
			}
		}
		return h.truncateLog(p)
	}
	for i := len(recs) - 1; i >= 0; i-- {
		r := recs[i]
		switch r.kind {
		case recData:
			if err := h.undoRecord(txRecord{kind: r.kind, oid: r.oid, size: r.size, old: r.old}); err != nil {
				return err
			}
		case recAlloc:
			// A slab allocation's span was durable before the recAlloc
			// record existed (carve persists before publication), so the
			// span lookup resolves and recoverFree clears the slot from
			// whichever bit state the crash left. A miss means a large
			// (bump) allocation: nothing to undo — if its bump advance
			// survived, the bytes leak, exactly as before.
			ap, ok := h.open[r.oid.Pool()]
			if !ok {
				return fmt.Errorf("pmem: recover: alloc pool %d not open", r.oid.Pool())
			}
			if _, _, ok := ap.alloc.lookup(r.oid.Offset()); !ok {
				continue
			}
			if err := h.recoverFree(r.oid); err != nil {
				return err
			}
		case recFree:
			// Never applied before commit.
		default:
			return fmt.Errorf("pmem: corrupt undo record kind %d", r.kind)
		}
	}
	if h.ftPools > 0 {
		// The rollback rewrote object bytes; recompute the checksums and
		// parity of every range it touched before the pool is used again.
		for _, r := range recs {
			if r.kind == recFree {
				continue
			}
			if err := h.ftRecoverRange(r.oid, r.size); err != nil {
				return err
			}
		}
	}
	return h.truncateLog(p)
}

// NeedsRecovery reports whether the pool's log holds state from an
// interrupted transaction (records to undo/redo, or a stale marker).
func (h *Heap) NeedsRecovery(p *Pool) bool {
	return h.read64(p, logStart+logOffCount) != 0 ||
		h.read64(p, logStart+logOffState) != txStateActive
}
