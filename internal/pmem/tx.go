package pmem

import (
	"encoding/binary"
	"fmt"

	"potgo/internal/isa"
	"potgo/internal/oid"
)

// Transaction support: write-ahead undo logging (paper §2.1.4).
//
// The undo log lives inside the transaction's pool, immediately after the
// header page. Its layout:
//
//	log[0]      count of valid records (0 = log empty / committed)
//	log[8]...   records, each: {kind, oid, size, data padded to 8 bytes}
//
// A record is persisted (CLWB + SFENCE) before the count that publishes it,
// so a crash can never observe a published-but-unwritten record; and the
// count is cleared (and persisted) only after commit has persisted all
// modified data, so recovery always sees either "nothing to undo" or a
// complete undo description.
const (
	recData  = 0 // snapshot of object bytes taken by tx_add_range
	recAlloc = 1 // allocation to undo on abort
	recFree  = 2 // free-intent to apply on commit
)

const recHeaderBytes = 24

type txRecord struct {
	kind uint64
	oid  oid.OID
	size uint32
	old  []byte // recData: the snapshotted bytes
}

type txState struct {
	pool     *Pool
	writeOff uint32 // next free byte in the log region (pool offset)
	records  []txRecord
}

// InTx reports whether a transaction is active.
func (h *Heap) InTx() bool { return h.tx != nil }

// TxBegin starts a transaction whose undo log lives in pool p (paper:
// tx_begin). Nested transactions are not supported, matching the reduced
// API of paper Table 1.
func (h *Heap) TxBegin(p *Pool) error {
	if h.tx != nil {
		return fmt.Errorf("pmem: transaction already active on pool %q", h.tx.pool.b.name)
	}
	if _, ok := h.open[p.b.id]; !ok {
		return fmt.Errorf("pmem: tx_begin on closed pool %q", p.b.name)
	}
	h.tx = &txState{pool: p, writeOff: logStart + 8}
	h.Emit.Jump()
	h.Emit.Compute(txBeginWork)
	return nil
}

// logAppend writes one record into the log, persists it, then publishes it
// by bumping and persisting the count.
func (h *Heap) logAppend(kind uint64, target oid.OID, size uint32, data []byte) error {
	t := h.tx
	padded := (uint32(len(data)) + 7) &^ 7
	if uint64(t.writeOff)+recHeaderBytes+uint64(padded) > logStart+t.pool.b.logBytes {
		return fmt.Errorf("pmem: undo log of pool %q full", t.pool.b.name)
	}
	h.Emit.Jump() // call into the log layer
	h.Emit.Compute(txLogWork)
	recOID := t.pool.OID(t.writeOff)
	rec, err := h.Deref(recOID, isa.RZ)
	if err != nil {
		return err
	}
	if err := rec.Store64(0, kind, isa.RZ); err != nil {
		return err
	}
	if err := rec.Store64(8, uint64(target), isa.RZ); err != nil {
		return err
	}
	if err := rec.Store64(16, uint64(size), isa.RZ); err != nil {
		return err
	}
	if len(data) > 0 {
		buf := make([]byte, padded)
		copy(buf, data)
		if err := rec.WriteBytes(recHeaderBytes, buf); err != nil {
			return err
		}
	}
	// Write-ahead: record persists before it is published.
	if err := h.Persist(recOID, recHeaderBytes+padded); err != nil {
		return err
	}
	t.writeOff += recHeaderBytes + padded

	countOID := t.pool.OID(logStart)
	cnt, err := h.Deref(countOID, isa.RZ)
	if err != nil {
		return err
	}
	n := uint64(len(t.records) + 1)
	if err := cnt.Store64(0, n, isa.RZ); err != nil {
		return err
	}
	if err := h.Persist(countOID, 8); err != nil {
		return err
	}
	rcd := txRecord{kind: kind, oid: target, size: size}
	if len(data) > 0 {
		rcd.old = append([]byte(nil), data...)
	}
	t.records = append(t.records, rcd)
	return nil
}

// TxAddRange snapshots [o, o+size) into the undo log (paper: tx_add_range).
// Call it before modifying the range; commit makes the new contents durable,
// abort/recovery restores the snapshot.
func (h *Heap) TxAddRange(o oid.OID, size uint32) error {
	if h.tx == nil {
		return fmt.Errorf("pmem: tx_add_range outside a transaction")
	}
	src, err := h.Deref(o, isa.RZ)
	if err != nil {
		return err
	}
	old := make([]byte, size)
	if err := src.ReadBytes(0, old); err != nil {
		return err
	}
	return h.logAppend(recData, o, size, old)
}

// TxAlloc is tx_pmalloc: an allocation that is undone if the transaction
// aborts. The paper's signature allocates from the transaction's pool; this
// implementation also accepts any open pool, which the multi-pool usage
// patterns (EACH/RANDOM) need.
func (h *Heap) TxAlloc(p *Pool, size uint32) (oid.OID, error) {
	if h.tx == nil {
		return oid.Null, fmt.Errorf("pmem: tx_pmalloc outside a transaction")
	}
	o, err := h.Alloc(p, size)
	if err != nil {
		return oid.Null, err
	}
	if err := h.logAppend(recAlloc, o, size, nil); err != nil {
		return oid.Null, err
	}
	return o, nil
}

// TxFree is tx_pfree: the free is logged now and applied at commit, so an
// abort leaves the object intact.
func (h *Heap) TxFree(o oid.OID) error {
	if h.tx == nil {
		return fmt.Errorf("pmem: tx_pfree outside a transaction")
	}
	if _, ok := h.open[o.Pool()]; !ok {
		return fmt.Errorf("pmem: tx_pfree in unopened pool %d", o.Pool())
	}
	return h.logAppend(recFree, o, 0, nil)
}

// TxEnd commits: all snapshotted ranges are persisted, deferred frees are
// applied, and the log is truncated (paper: tx_end).
func (h *Heap) TxEnd() error {
	if h.tx == nil {
		return fmt.Errorf("pmem: tx_end outside a transaction")
	}
	t := h.tx
	h.Emit.Jump()
	h.Emit.Compute(txEndWork)
	// Persist every range modified under the transaction (one fence for
	// the batch), then the deferred frees, then invalidate the log.
	fence := false
	for _, r := range t.records {
		if r.kind == recData || r.kind == recAlloc {
			if err := h.persistNoFence(r.oid, r.size); err != nil {
				return err
			}
			fence = true
		}
	}
	if fence {
		h.Emit.SFence()
	}
	for _, r := range t.records {
		if r.kind == recFree {
			if err := h.Free(r.oid); err != nil {
				return err
			}
		}
	}
	if err := h.truncateLog(t.pool); err != nil {
		return err
	}
	h.tx = nil
	return nil
}

// TxAbort rolls the transaction back in place: snapshots are restored,
// transactional allocations are freed, deferred frees are dropped.
func (h *Heap) TxAbort() error {
	if h.tx == nil {
		return fmt.Errorf("pmem: tx_abort outside a transaction")
	}
	t := h.tx
	for i := len(t.records) - 1; i >= 0; i-- {
		if err := h.undoRecord(t.records[i]); err != nil {
			return err
		}
	}
	if err := h.truncateLog(t.pool); err != nil {
		return err
	}
	h.tx = nil
	return nil
}

func (h *Heap) undoRecord(r txRecord) error {
	switch r.kind {
	case recData:
		dst, err := h.Deref(r.oid, isa.RZ)
		if err != nil {
			return err
		}
		buf := make([]byte, (len(r.old)+7)&^7)
		copy(buf, r.old)
		if err := dst.WriteBytes(0, buf); err != nil {
			return err
		}
		return h.Persist(r.oid, r.size)
	case recAlloc:
		return h.Free(r.oid)
	case recFree:
		return nil // never applied
	default:
		return fmt.Errorf("pmem: corrupt undo record kind %d", r.kind)
	}
}

func (h *Heap) truncateLog(p *Pool) error {
	countOID := p.OID(logStart)
	cnt, err := h.Deref(countOID, isa.RZ)
	if err != nil {
		return err
	}
	if err := cnt.Store64(0, 0, isa.RZ); err != nil {
		return err
	}
	return h.Persist(countOID, 8)
}

// Recover replays the pool's undo log after a crash (pool just reopened):
// if the log holds records, the interrupted transaction's effects are rolled
// back in reverse order and the log is truncated. Records that reference
// other pools require those pools to be open.
func (h *Heap) Recover(p *Pool) error {
	count := h.read64(p, logStart)
	if count == 0 {
		return nil
	}
	// Parse the records straight from the persisted log bytes.
	type parsed struct {
		kind uint64
		oid  oid.OID
		size uint32
		old  []byte
	}
	var recs []parsed
	off := uint64(logStart + 8)
	for i := uint64(0); i < count; i++ {
		hdr := make([]byte, recHeaderBytes)
		if err := h.AS.ReadAt(p.region.Base+off, hdr); err != nil {
			return fmt.Errorf("pmem: recover %q: %w", p.b.name, err)
		}
		kind := binary.LittleEndian.Uint64(hdr[0:])
		target := oid.OID(binary.LittleEndian.Uint64(hdr[8:]))
		size := uint32(binary.LittleEndian.Uint64(hdr[16:]))
		padded := uint64((size + 7) &^ 7)
		var old []byte
		if kind == recData {
			old = make([]byte, padded)
			if err := h.AS.ReadAt(p.region.Base+off+recHeaderBytes, old); err != nil {
				return fmt.Errorf("pmem: recover %q: %w", p.b.name, err)
			}
			old = old[:size]
		}
		if kind == recAlloc {
			padded = 0
		}
		if kind == recFree {
			padded = 0
		}
		recs = append(recs, parsed{kind: kind, oid: target, size: size, old: old})
		off += recHeaderBytes + padded
	}
	for i := len(recs) - 1; i >= 0; i-- {
		r := recs[i]
		if err := h.undoRecord(txRecord{kind: r.kind, oid: r.oid, size: r.size, old: r.old}); err != nil {
			return err
		}
	}
	return h.truncateLog(p)
}

// NeedsRecovery reports whether the pool's log holds records from an
// interrupted transaction.
func (h *Heap) NeedsRecovery(p *Pool) bool { return h.read64(p, logStart) != 0 }
