// Package pmem implements the persistent-memory programming library of the
// paper's Table 1 — pool management, object management (a persistent
// free-list allocator), ObjectID translation, durability (persist = CLWB +
// SFENCE) and failure-safety (write-ahead undo-log transactions) — with the
// two compilation modes of the evaluation:
//
//   - BASE: every persistent dereference emits the software oid_direct
//     sequence (emit.SoftTranslator) followed by ordinary loads/stores on
//     the translated virtual address.
//   - OPT: every persistent dereference emits nvld/nvst instructions that
//     the hardware POLB/POT translate.
//
// All data is functionally real: pools are byte arrays mapped into the
// simulated address space, allocator metadata and undo logs live inside the
// pools, and crash recovery replays the persisted log bytes.
package pmem

import (
	"fmt"

	"potgo/internal/oid"
)

// backing is the "file" behind a pool: the durable bytes that survive
// pool_close/pool_open cycles (and simulated crashes), plus the pool's
// system-wide identity.
type backing struct {
	name     string
	id       oid.PoolID
	data     []byte
	size     uint64
	logBytes uint64
	// parityBytes is the size of the XOR-parity column between the undo
	// log and the data region; zero for pools created without media-fault
	// tolerance. Immutable after create, like logBytes.
	parityBytes uint64
	open        bool
}

// Store is the durable home of every pool ever created — the moral
// equivalent of the NVM-backed filesystem that pool files live on. Pool ids
// are unique, system-wide, and stable across close/open (paper §2.1.2).
type Store struct {
	byName map[string]*backing
	nextID uint32
}

// NewStore creates an empty pool store.
func NewStore() *Store {
	return &Store{byName: make(map[string]*backing), nextID: 1}
}

// Exists reports whether a pool of that name has been created.
func (s *Store) Exists(name string) bool {
	_, ok := s.byName[name]
	return ok
}

// Pools returns the number of pools in the store.
func (s *Store) Pools() int { return len(s.byName) }

func (s *Store) create(name string, size, logBytes, parityBytes uint64) (*backing, error) {
	if _, ok := s.byName[name]; ok {
		return nil, fmt.Errorf("pmem: pool %q already exists", name)
	}
	if s.nextID == 0 { // wrapped past 2^32-1
		return nil, fmt.Errorf("pmem: pool id space exhausted")
	}
	b := &backing{
		name:        name,
		id:          oid.PoolID(s.nextID),
		data:        make([]byte, size),
		size:        size,
		logBytes:    logBytes,
		parityBytes: parityBytes,
	}
	s.nextID++
	s.byName[name] = b
	return b, nil
}

func (s *Store) lookup(name string) (*backing, error) {
	b, ok := s.byName[name]
	if !ok {
		return nil, fmt.Errorf("pmem: pool %q does not exist", name)
	}
	return b, nil
}

// DumpBytes returns a copy of every pool's durable bytes keyed by pool name.
// Only the durable view is captured — call Heap.SyncAll first if the cache
// view must be included. Pool contents are position-independent (object
// references are stored as OIDs, never as virtual addresses), so two runs of
// the same workload under different translation modes must dump identically.
func (s *Store) DumpBytes() map[string][]byte {
	out := make(map[string][]byte, len(s.byName))
	for name, b := range s.byName {
		out[name] = append([]byte(nil), b.data...)
	}
	return out
}

// Delete removes a closed pool from the store (not part of the paper's API,
// but needed for cleanup in long-running hosts).
func (s *Store) Delete(name string) error {
	b, ok := s.byName[name]
	if !ok {
		return fmt.Errorf("pmem: pool %q does not exist", name)
	}
	if b.open {
		return fmt.Errorf("pmem: pool %q is open", name)
	}
	delete(s.byName, name)
	return nil
}
