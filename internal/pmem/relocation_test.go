package pmem

import (
	"testing"

	"potgo/internal/emit"
	"potgo/internal/isa"
	"potgo/internal/oid"
	"potgo/internal/trace"
	"potgo/internal/vm"
)

// Relocatability across processes: a pool written by one process is read by
// another whose ASLR places it at a completely different virtual address;
// the stored ObjectIDs (including cross-object links) resolve unchanged.
// This is the paper's core motivation (§1, Figure 2).
func TestPoolRelocatesAcrossProcesses(t *testing.T) {
	store := NewStore()

	// Process A.
	asA := vm.NewAddressSpace(111)
	hA, err := NewHeap(asA, store, emit.New(trace.Discard{}, emit.Opt), nil)
	if err != nil {
		t.Fatal(err)
	}
	pA, err := hA.Create("shared", 1<<20)
	if err != nil {
		t.Fatal(err)
	}
	baseA := pA.Base()
	// A two-node linked structure: root -> a -> b, linked by ObjectIDs.
	rootA, err := hA.Root(pA, 64)
	if err != nil {
		t.Fatal(err)
	}
	a, _ := hA.Alloc(pA, 16)
	b, _ := hA.Alloc(pA, 16)
	refRoot, _ := hA.Deref(rootA, isa.RZ)
	refA, _ := hA.Deref(a, isa.RZ)
	refB, _ := hA.Deref(b, isa.RZ)
	if err := refRoot.Store64(0, uint64(a), isa.RZ); err != nil {
		t.Fatal(err)
	}
	if err := refA.Store64(0, 0xAAAA, isa.RZ); err != nil {
		t.Fatal(err)
	}
	if err := refA.Store64(8, uint64(b), isa.RZ); err != nil {
		t.Fatal(err)
	}
	if err := refB.Store64(0, 0xBBBB, isa.RZ); err != nil {
		t.Fatal(err)
	}
	if err := hA.Persist(rootA, 8); err != nil {
		t.Fatal(err)
	}
	if err := hA.Close(pA); err != nil {
		t.Fatal(err)
	}

	// Process B: different address space, different ASLR seed.
	asB := vm.NewAddressSpace(999)
	hB, err := NewHeap(asB, store, emit.New(trace.Discard{}, emit.Opt), nil)
	if err != nil {
		t.Fatal(err)
	}
	pB, err := hB.Open("shared")
	if err != nil {
		t.Fatal(err)
	}
	if pB.Base() == baseA {
		t.Logf("note: same mapping address by chance (%#x)", baseA)
	}
	if pB.ID() != pA.ID() {
		t.Fatal("pool identity must be stable across processes")
	}
	rootB, err := hB.Root(pB, 64)
	if err != nil {
		t.Fatal(err)
	}
	if rootB != rootA {
		t.Fatalf("root ObjectID changed: %v vs %v", rootB, rootA)
	}
	ref, _ := hB.Deref(rootB, isa.RZ)
	wa, _ := ref.Load64(0)
	refA2, err := hB.Deref(wa.OID(), wa.Reg)
	if err != nil {
		t.Fatal(err)
	}
	va, _ := refA2.Load64(0)
	wb, _ := refA2.Load64(8)
	if va.V != 0xAAAA {
		t.Errorf("node a value = %#x", va.V)
	}
	refB2, err := hB.Deref(wb.OID(), wb.Reg)
	if err != nil {
		t.Fatal(err)
	}
	vb, _ := refB2.Load64(0)
	if vb.V != 0xBBBB {
		t.Errorf("node b value = %#x", vb.V)
	}
}

// Cross-pool links survive each pool relocating independently.
func TestCrossPoolLinksRelocate(t *testing.T) {
	store := NewStore()
	asA := vm.NewAddressSpace(5)
	hA, err := NewHeap(asA, store, emit.New(trace.Discard{}, emit.Opt), nil)
	if err != nil {
		t.Fatal(err)
	}
	p1, _ := hA.CreateSized("p1", 64*1024, 4096)
	p2, _ := hA.CreateSized("p2", 64*1024, 4096)
	o1, _ := hA.Alloc(p1, 16)
	o2, _ := hA.Alloc(p2, 16)
	r1, _ := hA.Deref(o1, isa.RZ)
	r2, _ := hA.Deref(o2, isa.RZ)
	// p1's object points into p2 and vice versa.
	if err := r1.Store64(0, uint64(o2), isa.RZ); err != nil {
		t.Fatal(err)
	}
	if err := r2.Store64(0, uint64(o1), isa.RZ); err != nil {
		t.Fatal(err)
	}
	hA.Close(p1)
	hA.Close(p2)

	asB := vm.NewAddressSpace(6)
	hB, err := NewHeap(asB, store, emit.New(trace.Discard{}, emit.Opt), nil)
	if err != nil {
		t.Fatal(err)
	}
	// Open in the opposite order for different placement.
	q2, err := hB.Open("p2")
	if err != nil {
		t.Fatal(err)
	}
	q1, err := hB.Open("p1")
	if err != nil {
		t.Fatal(err)
	}
	_ = q1
	_ = q2
	ref1, err := hB.Deref(o1, isa.RZ)
	if err != nil {
		t.Fatal(err)
	}
	w, _ := ref1.Load64(0)
	if w.OID() != o2 {
		t.Fatalf("cross-pool link broken: %v, want %v", w.OID(), o2)
	}
	ref2, err := hB.Deref(w.OID(), w.Reg)
	if err != nil {
		t.Fatal(err)
	}
	back, _ := ref2.Load64(0)
	if back.OID() != o1 {
		t.Fatalf("back-link broken: %v, want %v", back.OID(), o1)
	}
}

// A pool can be null-checked: dereferencing OIDs from closed pools and the
// reserved null pool fails cleanly (the paper's POT exception, software
// side).
func TestDanglingReferences(t *testing.T) {
	as := vm.NewAddressSpace(8)
	h, err := NewHeap(as, NewStore(), emit.New(trace.Discard{}, emit.Opt), nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := h.Deref(oid.Null, isa.RZ); err == nil {
		t.Error("null deref must fail")
	}
	if _, err := h.Deref(oid.New(12345, 64), isa.RZ); err == nil {
		t.Error("deref into never-opened pool must fail")
	}
}
