package pmem

import (
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"

	"potgo/internal/isa"
	"potgo/internal/nvmsim"
	"potgo/internal/oid"
	"potgo/internal/randtest"
)

func newTestSharded(t *testing.T, nshards int) *Sharded {
	t.Helper()
	sh, err := NewSharded(NewStore(), nshards, 1)
	if err != nil {
		t.Fatalf("NewSharded: %v", err)
	}
	return sh
}

func TestLatchTableSlots(t *testing.T) {
	lt := NewLatchTable(10)
	if lt.Len() != 16 {
		t.Fatalf("Len() = %d, want 16 (next power of two above 10)", lt.Len())
	}
	o := oid.New(3, 4096)
	s := lt.Slot(o)
	if s < 0 || s >= lt.Len() {
		t.Fatalf("Slot out of range: %d", s)
	}
	if s2 := lt.Slot(o); s2 != s {
		t.Fatalf("Slot not stable: %d then %d", s, s2)
	}
	// Duplicate OIDs collapse to one latch acquisition; this must not
	// self-deadlock.
	unlock := lt.Lock(o, o, oid.New(3, 8192), o)
	unlock()
	runlock := lt.RLock(o, o)
	runlock()
}

func TestLatchTableStress(t *testing.T) {
	rng := randtest.New(t, 42)
	lt := NewLatchTable(8)
	counters := make([]uint64, lt.Len())

	oids := make([]oid.OID, 64)
	for i := range oids {
		oids[i] = oid.New(oid.PoolID(rng.Intn(8)+1), uint32(rng.Intn(1<<16))*8)
	}

	const workers = 8
	const iters = 2000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		seed := rng.Int63()
		go func() {
			defer wg.Done()
			r := rand.New(rand.NewSource(seed))
			for i := 0; i < iters; i++ {
				a, b := oids[r.Intn(len(oids))], oids[r.Intn(len(oids))]
				unlock := lt.Lock(a, b)
				counters[lt.Slot(a)]++
				if lt.Slot(b) != lt.Slot(a) {
					counters[lt.Slot(b)]++
				}
				unlock()
			}
		}()
	}
	wg.Wait()

	var total uint64
	for _, c := range counters {
		total += c
	}
	if total < workers*iters {
		t.Fatalf("counter total %d < minimum %d: latch failed to exclude", total, workers*iters)
	}
}

// TestShardedDisjointTxParallel runs transactional allocations from several
// goroutines, each on its own pool (its own shard), and verifies every
// committed canary plus the allocator sweep. Run under -race this is the
// core safety proof of the sharded heap's lock plan.
func TestShardedDisjointTxParallel(t *testing.T) {
	const workers = 4
	const iters = 100
	sh := newTestSharded(t, workers)

	pools := make([]*Pool, workers)
	for i := range pools {
		p, err := sh.Create(fmt.Sprintf("shard-par-%d", i), 1<<20)
		if err != nil {
			t.Fatalf("Create: %v", err)
		}
		pools[i] = p
	}

	type obj struct {
		o      oid.OID
		canary uint64
	}
	got := make([][]obj, workers)
	errs := make([]error, workers)

	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			p := pools[w]
			for i := 0; i < iters; i++ {
				canary := uint64(w)<<32 | uint64(i) | 1
				err := sh.Tx(p, nil, func(tx *Tx) error {
					o, err := tx.Alloc(p, 64)
					if err != nil {
						return err
					}
					ref, err := sh.Heap().Deref(o, isa.RZ)
					if err != nil {
						return err
					}
					if err := ref.Store64(0, canary, isa.RZ); err != nil {
						return err
					}
					got[w] = append(got[w], obj{o: o, canary: canary})
					return nil
				})
				if err != nil {
					errs[w] = err
					return
				}
			}
		}(w)
	}
	wg.Wait()
	for w, err := range errs {
		if err != nil {
			t.Fatalf("worker %d: %v", w, err)
		}
	}

	ids := make([]oid.PoolID, len(pools))
	for i, p := range pools {
		ids[i] = p.ID()
	}
	err := sh.View(ids, func() error {
		for w := range got {
			if len(got[w]) != iters {
				return fmt.Errorf("worker %d committed %d objects, want %d", w, len(got[w]), iters)
			}
			for _, ob := range got[w] {
				ref, err := sh.Heap().Deref(ob.o, isa.RZ)
				if err != nil {
					return err
				}
				word, err := ref.Load64(0)
				if err != nil {
					return err
				}
				if word.V != ob.canary {
					return fmt.Errorf("object %v holds %#x, want %#x", ob.o, word.V, ob.canary)
				}
			}
		}
		for _, p := range pools {
			if err := sh.Heap().CheckPool(p); err != nil {
				return err
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

// TestShardedMultiPoolAbort proves a transaction spanning two shards rolls
// back both pools when the callback fails.
func TestShardedMultiPoolAbort(t *testing.T) {
	sh := newTestSharded(t, 4)
	a, err := sh.Create("abort-a", 1<<20)
	if err != nil {
		t.Fatal(err)
	}
	b, err := sh.Create("abort-b", 1<<20)
	if err != nil {
		t.Fatal(err)
	}
	h := sh.Heap()

	var rootA, rootB oid.OID
	err = sh.Update([]oid.PoolID{a.ID(), b.ID()}, func() error {
		var err error
		if rootA, err = h.Root(a, 16); err != nil {
			return err
		}
		rootB, err = h.Root(b, 16)
		return err
	})
	if err != nil {
		t.Fatal(err)
	}

	write := func(o oid.OID, v uint64) error {
		ref, err := h.Deref(o, isa.RZ)
		if err != nil {
			return err
		}
		return ref.Store64(0, v, isa.RZ)
	}
	read := func(o oid.OID) uint64 {
		ref, err := h.Deref(o, isa.RZ)
		if err != nil {
			t.Fatalf("Deref: %v", err)
		}
		w, err := ref.Load64(0)
		if err != nil {
			t.Fatalf("Load64: %v", err)
		}
		return w.V
	}

	err = sh.Tx(a, []oid.PoolID{b.ID()}, func(tx *Tx) error {
		if err := tx.AddRange(rootA, 8); err != nil {
			return err
		}
		if err := tx.AddRange(rootB, 8); err != nil {
			return err
		}
		if err := write(rootA, 0x1111); err != nil {
			return err
		}
		if err := write(rootB, 0x2222); err != nil {
			return err
		}
		return nil
	})
	if err != nil {
		t.Fatalf("committing tx: %v", err)
	}

	boom := fmt.Errorf("boom")
	err = sh.Tx(a, []oid.PoolID{b.ID()}, func(tx *Tx) error {
		if err := tx.AddRange(rootA, 8); err != nil {
			return err
		}
		if err := tx.AddRange(rootB, 8); err != nil {
			return err
		}
		if err := write(rootA, 0xdead); err != nil {
			return err
		}
		if err := write(rootB, 0xbeef); err != nil {
			return err
		}
		return boom
	})
	if err == nil {
		t.Fatal("failing tx returned nil")
	}

	err = sh.View([]oid.PoolID{a.ID(), b.ID()}, func() error {
		if v := read(rootA); v != 0x1111 {
			return fmt.Errorf("pool a root = %#x after abort, want 0x1111", v)
		}
		if v := read(rootB); v != 0x2222 {
			return fmt.Errorf("pool b root = %#x after abort, want 0x2222", v)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

// TestShardedPoisonCrash arms the persistence domain under a concurrent
// transactional load: exactly one worker catches the primary crash signal,
// every other worker that touches the dead domain gets a poisoned one, and
// after the power cycle all pools recover to a consistent state.
func TestShardedPoisonCrash(t *testing.T) {
	const workers = 4
	sh := newTestSharded(t, workers)
	h := sh.Heap()

	names := make([]string, workers)
	pools := make([]*Pool, workers)
	for i := range pools {
		names[i] = fmt.Sprintf("poison-%d", i)
		p, err := sh.Create(names[i], 1<<20)
		if err != nil {
			t.Fatal(err)
		}
		pools[i] = p
	}

	h.NV.Arm(h.NV.Events() + 2000)

	var primaries, poisoned uint64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			defer func() {
				r := recover()
				if r == nil {
					return
				}
				cs, ok := nvmsim.AsCrashSignal(r)
				if !ok {
					panic(r)
				}
				if cs.Poisoned {
					atomic.AddUint64(&poisoned, 1)
				} else {
					atomic.AddUint64(&primaries, 1)
				}
			}()
			p := pools[w]
			for i := 0; ; i++ {
				err := sh.Tx(p, nil, func(tx *Tx) error {
					o, err := tx.Alloc(p, 64)
					if err != nil {
						return err
					}
					ref, err := h.Deref(o, isa.RZ)
					if err != nil {
						return err
					}
					return ref.Store64(0, uint64(w)<<32|uint64(i), isa.RZ)
				})
				if err != nil {
					t.Errorf("worker %d pre-crash error: %v", w, err)
					return
				}
			}
		}(w)
	}
	wg.Wait()

	if primaries != 1 {
		t.Fatalf("%d primary crash signals, want exactly 1 (poisoned: %d)", primaries, poisoned)
	}
	if primaries+poisoned != workers {
		t.Fatalf("%d workers stopped by the domain, want all %d", primaries+poisoned, workers)
	}

	if _, err := sh.Crash(nvmsim.DropAllPolicy()); err != nil {
		t.Fatalf("Crash: %v", err)
	}
	for i, name := range names {
		p, err := sh.Open(name)
		if err != nil {
			t.Fatalf("reopen %s: %v", name, err)
		}
		if err := sh.Recover(p); err != nil {
			t.Fatalf("recover %s: %v", name, err)
		}
		pools[i] = p
	}
	ids := make([]oid.PoolID, len(pools))
	for i, p := range pools {
		ids[i] = p.ID()
	}
	err := sh.View(ids, func() error {
		for _, p := range pools {
			if err := h.CheckPool(p); err != nil {
				return err
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

// TestBeginPerPoolExclusive checks the per-pool transaction registry: two
// live handles on one pool are rejected, handles on different pools are
// independent.
func TestBeginPerPoolExclusive(t *testing.T) {
	sh := newTestSharded(t, 2)
	h := sh.Heap()
	a, err := sh.Create("excl-a", 1<<20)
	if err != nil {
		t.Fatal(err)
	}
	b, err := sh.Create("excl-b", 1<<20)
	if err != nil {
		t.Fatal(err)
	}

	ta, err := h.Begin(a)
	if err != nil {
		t.Fatalf("Begin(a): %v", err)
	}
	if _, err := h.Begin(a); err == nil {
		t.Fatal("second Begin on one pool succeeded")
	}
	tb, err := h.Begin(b)
	if err != nil {
		t.Fatalf("Begin(b) while a is busy: %v", err)
	}
	if err := tb.Commit(); err != nil {
		t.Fatalf("Commit(b): %v", err)
	}
	if err := ta.Commit(); err != nil {
		t.Fatalf("Commit(a): %v", err)
	}
	if _, err := h.Begin(a); err != nil {
		t.Fatalf("Begin(a) after commit: %v", err)
	}
}
