package pmem

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"math/rand"
	"sort"
	"sync/atomic"

	"potgo/internal/nvmsim"
	"potgo/internal/oid"
)

// Media-fault tolerance (Pangolin-style, see DESIGN.md §5i). A pool created
// with CreateSizedFT carries two derived structures:
//
//   - a per-object CRC32C in each span header's checksum array, recomputed
//     for every object a transaction touched inside the commit fence, so
//     checksum state is exactly as crash-consistent as the data it covers;
//   - an XOR-parity column between the undo log and the data region: one
//     parity line per parityStride data-region lines, also recomputed for
//     every touched group inside the commit fence.
//
// A flipped bit in an object payload trips the checksum (VerifyOnRead or
// scrub); the payload is then rebuilt line-by-line from parity and the
// group's surviving lines and validated against the stored CRC before it
// is written back. A flipped bit in a checksum word is the mirror image:
// the checksum line is itself parity-covered, so it is rebuilt from parity
// and validated against the recomputed payload CRC. A flipped bit in a
// parity line is found by the scrub's group sweep (every object clean but
// the group XOR off) and rewritten. The fault model is one fault per
// parity group; pool header, log region and span header words are outside
// it (the injector never targets them, and CheckPool still catches them).

// parityStride is the number of data-region lines covered by one parity
// line.
const parityStride = 8

// ErrCorrupt is the sentinel all corruption failures wrap: a stored
// checksum disagreed with the object's bytes and repair was not possible
// (or not attempted, as on the VerifyOnRead path).
var ErrCorrupt = errors.New("pmem: object corrupt")

// CorruptError identifies the corrupt object. errors.Is(err, ErrCorrupt)
// matches it.
type CorruptError struct{ OID oid.OID }

func (e *CorruptError) Error() string {
	return fmt.Sprintf("pmem: object %v failed checksum verification", e.OID)
}

func (e *CorruptError) Is(target error) bool { return target == ErrCorrupt }

// castagnoli is the CRC32C table (memoized once; crc32.Update with it
// allocates nothing).
var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// ft reports whether the pool carries checksums and a parity column.
func (p *Pool) ft() bool { return p.b.parityBytes != 0 }

// FaultTolerant reports whether the pool was created with media-fault
// tolerance (CreateSizedFT).
func (p *Pool) FaultTolerant() bool { return p.ft() }

// parityStart is the pool offset of the parity column.
func (p *Pool) parityStart() uint32 { return uint32(logStart + p.b.logBytes) }

// groupOf maps a data-region offset to its parity group.
func (p *Pool) groupOf(off uint32) uint32 {
	return (off - uint32(p.dataStart())) / nvmsim.LineBytes / parityStride
}

// groupStart is the pool offset of the group's first data line.
func (p *Pool) groupStart(g uint32) uint32 {
	return uint32(p.dataStart()) + g*parityStride*nvmsim.LineBytes
}

// parityLineOff is the pool offset of the group's parity line.
func (p *Pool) parityLineOff(g uint32) uint32 {
	return p.parityStart() + g*nvmsim.LineBytes
}

// ftParityBytes sizes the parity column so every data-region line has a
// parity line over it: ceil(availLines / (stride+1)) lines of parity.
func ftParityBytes(size, logBytes uint64) uint64 {
	if size <= logStart+logBytes {
		return 0
	}
	avail := size - logStart - logBytes
	availLines := (avail + nvmsim.LineBytes - 1) / nvmsim.LineBytes
	parityLines := (availLines + parityStride) / (parityStride + 1)
	return parityLines * nvmsim.LineBytes
}

// CreateFT is Create with media-fault tolerance: per-object CRC32C
// checksums in the span headers and an XOR-parity column sized for the
// pool. The layout cost is the parity column (one line per parityStride
// data lines, ~11%) plus 4 checksum bytes per slab slot.
func (h *Heap) CreateFT(name string, size uint64) (*Pool, error) {
	return h.CreateSizedFT(name, size, DefaultLogBytes)
}

// CreateSizedFT is CreateSized with media-fault tolerance.
func (h *Heap) CreateSizedFT(name string, size, logBytes uint64) (*Pool, error) {
	parityBytes := ftParityBytes(size, logBytes)
	if size < MinPoolBytes(logBytes)+parityBytes {
		return nil, fmt.Errorf("pmem: pool size %d below fault-tolerant minimum %d",
			size, MinPoolBytes(logBytes)+parityBytes)
	}
	b, err := h.Store.create(name, size, logBytes, parityBytes)
	if err != nil {
		return nil, err
	}
	p, err := h.mapPool(b)
	if err != nil {
		return nil, err
	}
	h.mustWrite64(p, offMagic, poolMagic)
	h.mustWrite64(p, offSize, size)
	h.mustWrite64(p, offBump, p.dataStart())
	h.mustWrite64(p, offLogBytes, logBytes)
	h.mustWrite64(p, offParityBytes, parityBytes)
	if err := h.SyncPool(p); err != nil {
		return nil, err
	}
	h.Emit.Compute(openCost)
	atomic.AddUint64(&h.Metrics.PoolsCreated, 1)
	return p, nil
}

// SetFTDefault makes every subsequent Create/CreateSized produce a
// fault-tolerant pool, growing the requested size by the parity column so
// the pool's data capacity matches what a plain pool of that size would
// give. Workload and application code that sizes its pools for plain
// layout can then run unchanged over FT storage — the harness uses this
// to measure the checksum+parity overhead of whole benchmarks rather
// than plumbing an FT flag through every pool-creating call site.
func (h *Heap) SetFTDefault(on bool) { h.ftDefault = on }

// ftGrow returns a pool size whose FT layout leaves at least the data
// capacity of a plain pool of the requested size. The parity column is a
// function of the grown size, so one fixed-point step (plus a safety
// iteration for the rounding) suffices.
func ftGrow(size, logBytes uint64) uint64 {
	grown := size
	for i := 0; i < 4; i++ {
		pb := ftParityBytes(grown, logBytes)
		if grown-pb >= size {
			return grown
		}
		grown = size + pb + nvmsim.LineBytes
	}
	return grown
}

// SetVerifyOnRead makes every Deref of a slab object in a fault-tolerant
// pool verify the stored CRC32C first, returning a CorruptError on
// mismatch. The check stands down while any transaction is open (checksums
// are only recomputed at commit, so mid-transaction bytes legitimately
// disagree) and skips non-FT pools, bump allocations and free slots.
// Enable it only after the pool's derived state is valid (after RebuildFT
// for freshly set-up pools). The default-off path costs one branch.
func (h *Heap) SetVerifyOnRead(on bool) { h.verifyOnRead = on }

// MutateNoParity disables parity-column maintenance — a deliberately
// injected bug for the CI mutation check: with it on, the repair campaign
// must fail, proving the detector detects.
func (h *Heap) MutateNoParity(on bool) { h.ftNoParity = on }

// verifyOnDeref is the VerifyOnRead hook (see SetVerifyOnRead).
func (h *Heap) verifyOnDeref(o oid.OID) error {
	if atomic.LoadInt32(&h.txActive) != 0 {
		return nil
	}
	p, ok := h.open[o.Pool()]
	if !ok || !p.ft() {
		return nil
	}
	idx, slot, ok := p.alloc.lookup(o.Offset())
	if !ok {
		return nil
	}
	sp := p.alloc.spans[idx]
	if !h.slabBit(p, sp, slot) {
		return nil
	}
	crc, err := h.crcSlot(p, sp, slot)
	if err != nil {
		return err
	}
	if crc == h.readCsum(p, sp, slot) {
		return nil
	}
	return &CorruptError{OID: p.OID(sp.slotOff(slot))}
}

// crcSlot computes CRC32C over a slot's full payload from the cache view
// (functional reads; verification models hardware-side checking off the
// instruction stream). Chunked through a stack buffer: no allocation.
func (h *Heap) crcSlot(p *Pool, sp spanInfo, slot uint32) (uint32, error) {
	off := sp.slotOff(slot)
	size := sp.classSize()
	var buf [256]byte
	crc := uint32(0)
	for done := uint32(0); done < size; {
		n := size - done
		if n > uint32(len(buf)) {
			n = uint32(len(buf))
		}
		if err := h.AS.ReadAt(p.region.Base+uint64(off+done), buf[:n]); err != nil {
			return 0, err
		}
		crc = crc32.Update(crc, castagnoli, buf[:n])
		done += n
	}
	return crc, nil
}

// readCsum reads a slot's stored checksum (functional).
func (h *Heap) readCsum(p *Pool, sp spanInfo, slot uint32) uint32 {
	w := h.read64(p, sp.csumOff(slot)&^7)
	if sp.csumOff(slot)&7 != 0 {
		return uint32(w >> 32)
	}
	return uint32(w)
}

// ftWriteCsumNoFence stores a slot's checksum with a persistent
// read-modify-write of its 8-byte word (two checksums share a word) and
// queues the word's write-back; the caller owns the fence.
func (h *Heap) ftWriteCsumNoFence(p *Pool, sp spanInfo, slot uint32, crc uint32) error {
	wordOff := sp.csumOff(slot) &^ 7
	ref := h.DirectRef(p, wordOff)
	w, err := ref.Load64(0)
	if err != nil {
		return err
	}
	v := (w.V &^ 0xffffffff) | uint64(crc)
	if sp.csumOff(slot)&7 != 0 {
		v = (w.V & 0xffffffff) | uint64(crc)<<32
	}
	r := h.Emit.Compute(2, w.Reg)
	if err := ref.Store64(0, v, r); err != nil {
		return err
	}
	return h.persistNoFence(p.OID(wordOff), 8)
}

// readLinePadded reads one cache-view line, zero-padding past the pool end.
func (h *Heap) readLinePadded(p *Pool, off uint32, dst *[nvmsim.LineBytes]byte) error {
	*dst = [nvmsim.LineBytes]byte{}
	n := uint64(nvmsim.LineBytes)
	if uint64(off)+n > p.b.size {
		if uint64(off) >= p.b.size {
			return nil
		}
		n = p.b.size - uint64(off)
	}
	return h.AS.ReadAt(p.region.Base+uint64(off), dst[:n])
}

// xorGroup XORs a group's data lines (cache view) into dst.
func (h *Heap) xorGroup(p *Pool, g uint32, dst *[nvmsim.LineBytes]byte) error {
	*dst = [nvmsim.LineBytes]byte{}
	var line [nvmsim.LineBytes]byte
	start := p.groupStart(g)
	for i := uint32(0); i < parityStride; i++ {
		off := start + i*nvmsim.LineBytes
		if uint64(off) >= p.b.size {
			break
		}
		if err := h.readLinePadded(p, off, &line); err != nil {
			return err
		}
		for b := range dst {
			dst[b] ^= line[b]
		}
	}
	return nil
}

// ftSyncGroupNoFence recomputes one parity line from its group's current
// cache-view lines and stores it persistently; the caller owns the fence.
func (h *Heap) ftSyncGroupNoFence(p *Pool, g uint32) error {
	if h.ftNoParity {
		return nil
	}
	var xor [nvmsim.LineBytes]byte
	if err := h.xorGroup(p, g, &xor); err != nil {
		return err
	}
	ref := h.DirectRef(p, p.parityLineOff(g))
	if err := ref.WriteBytes(0, xor[:]); err != nil {
		return err
	}
	return h.persistNoFence(p.OID(p.parityLineOff(g)), nvmsim.LineBytes)
}

// ftSyncRangeNoFence recomputes the parity of every group covering
// [off, off+size); the caller owns the fence.
func (h *Heap) ftSyncRangeNoFence(p *Pool, off, size uint32) error {
	if size == 0 {
		return nil
	}
	first := p.groupOf(off)
	last := p.groupOf(off + size - 1)
	for g := first; g <= last; g++ {
		if err := h.ftSyncGroupNoFence(p, g); err != nil {
			return err
		}
	}
	return nil
}

// ftAppendGroups appends the dedup keys (pool<<32 | group) of every group
// covering [off, off+size) that is not yet in groups.
//
//potlint:noalloc
func ftAppendGroups(groups []uint64, p *Pool, off, size uint32) []uint64 {
	if size == 0 {
		return groups
	}
	first := p.groupOf(off)
	last := p.groupOf(off + size - 1)
outer:
	for g := first; g <= last; g++ {
		key := uint64(p.b.id)<<32 | uint64(g)
		for _, k := range groups {
			if k == key {
				continue outer
			}
		}
		groups = append(groups, key) //potlint:allow noalloc group scratch is recycled with the tx state; growth is amortized
	}
	return groups
}

// ftCommitSync brings the derived fault-tolerance state of every touched
// fault-tolerant pool up to date inside the commit fence: recompute the
// CRC32C of each slab object a record covers, then the parity of every
// group the records, checksum words and bitmap words dirtied. Called with
// the commit's CLWBs already queued and before its fence, so checksum and
// parity state ride the same durability point as the data they describe.
//
//potlint:noalloc
func (h *Heap) ftCommitSyncNoFence(st *txState) (bool, error) {
	groups := st.ftGroups[:0]
	for _, r := range st.records {
		if r.kind == recFree {
			continue
		}
		p, ok := h.open[r.oid.Pool()]
		if !ok || !p.ft() {
			continue
		}
		off, size := r.oid.Offset(), r.size
		groups = ftAppendGroups(groups, p, off, size)
		for cur := off; cur < off+size; {
			idx, slot, ok := p.alloc.lookupAny(cur) //potlint:allow noalloc lookup's search closure does not escape
			if !ok {
				break // bump allocation: uncovered
			}
			sp := p.alloc.spans[idx]
			crc, err := h.crcSlot(p, sp, slot)
			if err != nil {
				return false, err
			}
			if err := h.ftWriteCsumNoFence(p, sp, slot, crc); err != nil {
				return false, err
			}
			groups = ftAppendGroups(groups, p, sp.csumOff(slot)&^7, 8)
			next := sp.slotOff(slot) + sp.classSize()
			if next <= cur {
				break
			}
			cur = next
		}
		if r.kind == recAlloc {
			if idx, _, ok := p.alloc.lookup(off); ok { //potlint:allow noalloc lookup's search closure does not escape
				groups = ftAppendGroups(groups, p, p.alloc.spans[idx].base+spanOffBitmap, 8)
			}
		}
	}
	st.ftGroups = groups
	for _, key := range groups {
		p, ok := h.open[oid.PoolID(key>>32)]
		if !ok {
			continue
		}
		if err := h.ftSyncGroupNoFence(p, uint32(key)); err != nil {
			return false, err
		}
	}
	return len(groups) != 0, nil
}

// ftRecoverRange recomputes checksums and parity for a recovered record's
// range, with persistent writes under one fence. Recovery rewrote the
// bytes; the derived state must follow before the pool is used again.
func (h *Heap) ftRecoverRange(o oid.OID, size uint32) error {
	p, ok := h.open[o.Pool()]
	if !ok || !p.ft() {
		return nil
	}
	off := o.Offset()
	for cur := off; cur < off+size; {
		idx, slot, ok := p.alloc.lookupAny(cur)
		if !ok {
			break
		}
		sp := p.alloc.spans[idx]
		if h.slabBit(p, sp, slot) {
			crc, err := h.crcSlot(p, sp, slot)
			if err != nil {
				return err
			}
			if err := h.ftWriteCsumNoFence(p, sp, slot, crc); err != nil {
				return err
			}
			if err := h.ftSyncRangeNoFence(p, sp.csumOff(slot)&^7, 8); err != nil {
				return err
			}
		}
		next := sp.slotOff(slot) + sp.classSize()
		if next <= cur {
			break
		}
		cur = next
	}
	if err := h.ftSyncRangeNoFence(p, off, size); err != nil {
		return err
	}
	h.fence()
	atomic.AddUint64(&h.Metrics.Persists, 1)
	return nil
}

// RebuildFT recomputes every occupied slot's checksum and every parity
// group below the bump watermark, writing cache and durable views directly
// (no events, like open-time repair). Call it after non-transactional
// setup — pool population, Root creation — and before enabling
// VerifyOnRead or scrubbing: only transactional writes maintain the
// derived state incrementally.
func (h *Heap) RebuildFT(p *Pool) error {
	if !p.ft() {
		return nil
	}
	var buf [8]byte
	for _, sp := range p.alloc.spans {
		bits := h.read64(p, sp.base+spanOffBitmap)
		for slot := uint32(0); slot < uint32(sp.slots); slot++ {
			if bits&(1<<slot) == 0 {
				continue
			}
			crc, err := h.crcSlot(p, sp, slot)
			if err != nil {
				return err
			}
			wordOff := sp.csumOff(slot) &^ 7
			if err := h.AS.ReadAt(p.region.Base+uint64(wordOff), buf[:]); err != nil {
				return err
			}
			at := sp.csumOff(slot) & 7
			binary.LittleEndian.PutUint32(buf[at:], crc)
			if err := h.AS.WriteAt(p.region.Base+uint64(wordOff), buf[:]); err != nil {
				return err
			}
			copy(p.b.data[wordOff:wordOff+8], buf[:])
		}
	}
	if h.ftNoParity {
		return nil
	}
	bump := h.read64(p, offBump)
	var xor [nvmsim.LineBytes]byte
	for g := uint32(0); uint64(p.groupStart(g)) < bump; g++ {
		if err := h.xorGroup(p, g, &xor); err != nil {
			return err
		}
		off := p.parityLineOff(g)
		if err := h.AS.WriteAt(p.region.Base+uint64(off), xor[:]); err != nil {
			return err
		}
		copy(p.b.data[off:off+nvmsim.LineBytes], xor[:])
	}
	return nil
}

// reconstructLine rebuilds one data-region line from its group's parity
// and the group's other lines (cache view).
func (h *Heap) reconstructLine(p *Pool, lineOff uint32, dst *[nvmsim.LineBytes]byte) error {
	g := p.groupOf(lineOff)
	if err := h.readLinePadded(p, p.parityLineOff(g), dst); err != nil {
		return err
	}
	var line [nvmsim.LineBytes]byte
	start := p.groupStart(g)
	for i := uint32(0); i < parityStride; i++ {
		off := start + i*nvmsim.LineBytes
		if uint64(off) >= p.b.size || off == lineOff {
			continue
		}
		if err := h.readLinePadded(p, off, &line); err != nil {
			return err
		}
		for b := range dst {
			dst[b] ^= line[b]
		}
	}
	return nil
}

// repairSlot attempts to repair a slot whose stored checksum disagrees
// with its payload. Two hypotheses, both validated before any write:
//
//   - payload corruption: rebuild each payload line from parity; accept if
//     the candidate payload's CRC matches the stored checksum. Parity was
//     computed over the true bytes, so the written repair leaves it valid.
//   - checksum corruption: the checksum line is itself parity-covered;
//     rebuild it and accept if the rebuilt checksum matches the payload's
//     recomputed CRC (the whole rebuilt line is written — under the
//     one-fault-per-group model it is the true line).
//
// Repairs are ordinary persistent writes with their own fence, so a crash
// mid-repair is recoverable: the durable line is old (still caught), new
// (done), or torn (still caught, and parity still reconstructs it).
func (h *Heap) repairSlot(p *Pool, sp spanInfo, slot uint32) (bool, error) {
	stored := h.readCsum(p, sp, slot)
	cur, err := h.crcSlot(p, sp, slot)
	if err != nil {
		return false, err
	}
	if cur == stored {
		return true, nil
	}
	off := sp.slotOff(slot)
	size := sp.classSize()
	first := off &^ (nvmsim.LineBytes - 1)
	last := (off + size - 1) &^ (nvmsim.LineBytes - 1)
	// Hypothesis A, one line at a time: the fault model is a single bad
	// line, and reconstructing a *clean* line XORs the corrupt one in and
	// yields garbage. So splice each line's parity reconstruction into the
	// current bytes in turn; the splice whose payload matches the stored
	// CRC identifies the corrupt line, and only that line is rewritten.
	cand := make([]byte, last-first+nvmsim.LineBytes)
	for lo := first; lo <= last; lo += nvmsim.LineBytes {
		if err := h.AS.ReadAt(p.region.Base+uint64(lo), cand[lo-first:lo-first+nvmsim.LineBytes]); err != nil {
			return false, err
		}
	}
	var line [nvmsim.LineBytes]byte
	var orig [nvmsim.LineBytes]byte
	for lo := first; lo <= last; lo += nvmsim.LineBytes {
		at := lo - first
		if err := h.reconstructLine(p, lo, &line); err != nil {
			return false, err
		}
		copy(orig[:], cand[at:at+nvmsim.LineBytes])
		copy(cand[at:], line[:])
		pay := cand[off-first : off-first+size]
		if crc32.Checksum(pay, castagnoli) == stored {
			ref := h.DirectRef(p, lo)
			if err := ref.WriteBytes(0, line[:]); err != nil {
				return false, err
			}
			if err := h.Persist(p.OID(lo), nvmsim.LineBytes); err != nil {
				return false, err
			}
			return true, nil
		}
		copy(cand[at:], orig[:])
	}
	csumLine := sp.csumOff(slot) &^ (nvmsim.LineBytes - 1)
	if err := h.reconstructLine(p, csumLine, &line); err != nil {
		return false, err
	}
	if binary.LittleEndian.Uint32(line[sp.csumOff(slot)-csumLine:]) == cur {
		ref := h.DirectRef(p, csumLine)
		if err := ref.WriteBytes(0, line[:]); err != nil {
			return false, err
		}
		if err := h.Persist(p.OID(csumLine), nvmsim.LineBytes); err != nil {
			return false, err
		}
		return true, nil
	}
	return false, nil
}

// RepairObject verifies one slab object and repairs it if its checksum
// trips; it reports whether the object is now intact. potserve's get path
// uses it for inline repair after a VerifyOnRead miss.
func (h *Heap) RepairObject(o oid.OID) (bool, error) {
	p, ok := h.open[o.Pool()]
	if !ok || !p.ft() {
		return false, fmt.Errorf("pmem: repair: %v not in an open fault-tolerant pool", o)
	}
	idx, slot, ok := p.alloc.lookup(o.Offset())
	if !ok {
		return false, fmt.Errorf("pmem: repair: %v is not a slab object", o)
	}
	return h.repairSlot(p, p.alloc.spans[idx], slot)
}

// ScrubStats summarizes one scrub pass.
type ScrubStats struct {
	// Checked counts occupied slots verified.
	Checked int
	// Repaired counts objects and checksum words rebuilt from parity.
	Repaired int
	// Unrepairable counts objects whose checksum trips but no hypothesis
	// validated (more than one fault in a group, or parity disabled).
	Unrepairable int
	// ParityRepaired counts parity lines rewritten by the group sweep.
	ParityRepaired int
}

// Add accumulates another pass's stats.
func (s *ScrubStats) Add(o ScrubStats) {
	s.Checked += o.Checked
	s.Repaired += o.Repaired
	s.Unrepairable += o.Unrepairable
	s.ParityRepaired += o.ParityRepaired
}

// ScrubPool verifies every occupied slot of a fault-tolerant pool,
// repairing what it can (phase A), then sweeps the parity groups below the
// bump watermark and rewrites any parity line whose group XOR is off while
// every object it covers verifies — the signature of a fault in the parity
// line itself (phase B). The caller must hold the pool quiescent (its
// shard's lock, or a single-threaded heap).
func (h *Heap) ScrubPool(p *Pool) (ScrubStats, error) {
	var st ScrubStats
	if !p.ft() {
		return st, nil
	}
	for _, sp := range p.alloc.spans {
		bits := h.read64(p, sp.base+spanOffBitmap)
		for slot := uint32(0); slot < uint32(sp.slots); slot++ {
			if bits&(1<<slot) == 0 {
				continue
			}
			st.Checked++
			crc, err := h.crcSlot(p, sp, slot)
			if err != nil {
				return st, err
			}
			if crc == h.readCsum(p, sp, slot) {
				continue
			}
			repaired, err := h.repairSlot(p, sp, slot)
			if err != nil {
				return st, err
			}
			if repaired {
				st.Repaired++
			} else {
				st.Unrepairable++
			}
		}
	}
	bump := h.read64(p, offBump)
	var xor, parity [nvmsim.LineBytes]byte
	for g := uint32(0); uint64(p.groupStart(g)) < bump; g++ {
		if err := h.xorGroup(p, g, &xor); err != nil {
			return st, err
		}
		if err := h.readLinePadded(p, p.parityLineOff(g), &parity); err != nil {
			return st, err
		}
		if xor == parity {
			continue
		}
		clean, err := h.groupObjectsClean(p, g)
		if err != nil {
			return st, err
		}
		if !clean {
			continue // already counted unrepairable in phase A
		}
		ref := h.DirectRef(p, p.parityLineOff(g))
		if err := ref.WriteBytes(0, xor[:]); err != nil {
			return st, err
		}
		if err := h.Persist(p.OID(p.parityLineOff(g)), nvmsim.LineBytes); err != nil {
			return st, err
		}
		st.ParityRepaired++
	}
	return st, nil
}

// groupObjectsClean reports whether every occupied slot whose payload or
// checksum word overlaps the group verifies against its stored checksum.
func (h *Heap) groupObjectsClean(p *Pool, g uint32) (bool, error) {
	lo := p.groupStart(g)
	hi := lo + parityStride*nvmsim.LineBytes
	for _, sp := range p.alloc.spans {
		if uint64(sp.base) >= uint64(hi) || sp.end() <= uint64(lo) {
			continue
		}
		bits := h.read64(p, sp.base+spanOffBitmap)
		for slot := uint32(0); slot < uint32(sp.slots); slot++ {
			if bits&(1<<slot) == 0 {
				continue
			}
			payLo := sp.slotOff(slot)
			payHi := payLo + sp.classSize()
			csumLo := sp.csumOff(slot) &^ 7
			overlaps := (payLo < hi && payHi > lo) || (csumLo < hi && csumLo+8 > lo)
			if !overlaps {
				continue
			}
			crc, err := h.crcSlot(p, sp, slot)
			if err != nil {
				return false, err
			}
			if crc != h.readCsum(p, sp, slot) {
				return false, nil
			}
		}
	}
	return true, nil
}

// CorruptMode selects the media-fault injector's target class.
type CorruptMode int

const (
	// CorruptDetect flips bits in live object payloads: VerifyOnRead (or
	// the scrub's checksum pass) catches them.
	CorruptDetect CorruptMode = iota
	// CorruptSilent flips bits in checksum words and parity lines: reads
	// sail past them; only the scrub's derived-state sweeps notice.
	CorruptSilent
)

func (m CorruptMode) String() string {
	if m == CorruptSilent {
		return "silent"
	}
	return "detect"
}

// ParseCorruptMode parses "detect" or "silent".
func ParseCorruptMode(s string) (CorruptMode, error) {
	switch s {
	case "detect":
		return CorruptDetect, nil
	case "silent":
		return CorruptSilent, nil
	default:
		return 0, fmt.Errorf("pmem: unknown corrupt mode %q (want detect or silent)", s)
	}
}

// Corruption records one injected media fault.
type Corruption struct {
	// OID is the slab object the fault targets (for parity faults, an
	// object in the affected group).
	OID oid.OID
	// Flip is the exact bit flipped, replayable through nvmsim.
	Flip nvmsim.Flip
	// Kind is "payload", "csum" or "parity".
	Kind string
}

// CorruptObjects injects k single-bit media faults into live objects of
// the open fault-tolerant pools, each fault a numbered nvmsim event.
// Targets are deduplicated by slot and by parity group — the repair
// guarantee is one fault per group. Deterministic for a given seed and
// heap state. The caller should be quiescent (locks held, no live tx).
func (h *Heap) CorruptObjects(k int, mode CorruptMode, seed uint64) ([]Corruption, error) {
	type cand struct {
		p    *Pool
		sp   spanInfo
		slot uint32
	}
	ids := make([]oid.PoolID, 0, len(h.open))
	for id := range h.open {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	var cands []cand
	for _, id := range ids {
		p := h.open[id]
		if !p.ft() {
			continue
		}
		for _, sp := range p.alloc.spans {
			bits := h.read64(p, sp.base+spanOffBitmap)
			for slot := uint32(0); slot < uint32(sp.slots); slot++ {
				if bits&(1<<slot) != 0 {
					cands = append(cands, cand{p: p, sp: sp, slot: slot})
				}
			}
		}
	}
	if len(cands) == 0 {
		return nil, fmt.Errorf("pmem: no live objects in fault-tolerant pools to corrupt")
	}
	rng := rand.New(rand.NewSource(int64(seed)))
	usedGroup := make(map[uint64]bool)
	usedSlot := make(map[uint64]bool)
	var out []Corruption
	for attempts := 0; len(out) < k; attempts++ {
		if attempts > 1000*k+1000 {
			return out, fmt.Errorf("pmem: could not place %d faults in distinct parity groups (placed %d)", k, len(out))
		}
		c := cands[rng.Intn(len(cands))]
		o := c.p.OID(c.sp.slotOff(c.slot))
		slotKey := uint64(c.p.b.id)<<32 | uint64(o.Offset())
		if usedSlot[slotKey] {
			continue
		}
		kind := "payload"
		var off, bit uint32
		switch {
		case mode == CorruptDetect:
			bit = uint32(rng.Intn(int(c.sp.classSize()) * 8))
			off = c.sp.slotOff(c.slot) + bit/8
			bit %= 8
		case rng.Intn(2) == 0:
			kind = "csum"
			bit = uint32(rng.Intn(32))
			off = c.sp.csumOff(c.slot) + bit/8
			bit %= 8
		default:
			kind = "parity"
			g := c.p.groupOf(c.sp.slotOff(c.slot))
			bit = uint32(rng.Intn(nvmsim.LineBytes * 8))
			off = c.p.parityLineOff(g) + bit/8
			bit %= 8
		}
		lineOff := off &^ (nvmsim.LineBytes - 1)
		var g uint32
		if kind == "parity" {
			g = (lineOff - c.p.parityStart()) / nvmsim.LineBytes
		} else {
			g = c.p.groupOf(lineOff)
		}
		groupKey := uint64(c.p.b.id)<<32 | uint64(g)
		if usedGroup[groupKey] {
			continue
		}
		usedGroup[groupKey] = true
		usedSlot[slotKey] = true
		flipBit := uint16((off-lineOff)*8 + bit)
		h.NV.FlipBit(uint32(c.p.b.id), lineOff, flipBit, h)
		out = append(out, Corruption{
			OID:  o,
			Flip: nvmsim.Flip{Line: nvmsim.Line{Pool: uint32(c.p.b.id), Off: lineOff}, Bit: flipBit},
			Kind: kind,
		})
	}
	return out, nil
}
