package pmem_test

import (
	"fmt"

	"potgo/internal/emit"
	"potgo/internal/isa"
	"potgo/internal/nvmsim"
	"potgo/internal/pmem"
	"potgo/internal/trace"
	"potgo/internal/vm"
)

// Example shows the basic lifecycle of the paper's Table 1 API: create a
// pool, allocate a persistent object, write it durably, and read it back
// through its ObjectID after the pool has been closed and remapped.
func Example() {
	as := vm.NewAddressSpace(1)
	heap, _ := pmem.NewHeap(as, pmem.NewStore(), emit.New(trace.Discard{}, emit.Opt), nil)

	pool, _ := heap.Create("example", 1<<20) // pool_create
	obj, _ := heap.Alloc(pool, 16)           // pmalloc
	ref, _ := heap.Deref(obj, isa.RZ)        // dereference the ObjectID
	_ = ref.Store64(0, 42, isa.RZ)           // write a field
	_ = heap.Persist(obj, 16)                // persist (CLWB + SFENCE)
	_ = heap.Close(pool)                     // pool_close
	pool, _ = heap.Open("example")           // pool_open (new address!)
	ref, _ = heap.Deref(obj, isa.RZ)         // the same ObjectID still works
	w, _ := ref.Load64(0)
	fmt.Println("value:", w.V, "— pool id stable:", pool.ID() == obj.Pool())
	// Output:
	// value: 42 — pool id stable: true
}

// ExampleHeap_TxBegin shows a failure-safe update: the undo log restores
// the snapshot when the transaction aborts.
func ExampleHeap_TxBegin() {
	as := vm.NewAddressSpace(2)
	heap, _ := pmem.NewHeap(as, pmem.NewStore(), emit.New(trace.Discard{}, emit.Opt), nil)
	pool, _ := heap.Create("tx", 1<<20)
	obj, _ := heap.Alloc(pool, 8)
	ref, _ := heap.Deref(obj, isa.RZ)
	_ = ref.Store64(0, 100, isa.RZ)

	_ = heap.TxBegin(pool)      // tx_begin
	_ = heap.TxAddRange(obj, 8) // tx_add_range: snapshot before modifying
	_ = ref.Store64(0, 999, isa.RZ)
	_ = heap.TxAbort() // roll back

	w, _ := ref.Load64(0)
	fmt.Println("after abort:", w.V)

	_ = heap.TxBegin(pool)
	_ = heap.TxAddRange(obj, 8)
	_ = ref.Store64(0, 999, isa.RZ)
	_ = heap.TxEnd() // tx_end: commit durably
	w, _ = ref.Load64(0)
	fmt.Println("after commit:", w.V)
	// Output:
	// after abort: 100
	// after commit: 999
}

// ExampleHeap_Recover shows crash recovery: a transaction interrupted by a
// crash is rolled back when the pool is reopened.
func ExampleHeap_Recover() {
	as := vm.NewAddressSpace(3)
	store := pmem.NewStore()
	heap, _ := pmem.NewHeap(as, store, emit.New(trace.Discard{}, emit.Opt), nil)
	pool, _ := heap.Create("crash", 1<<20)
	obj, _ := heap.Alloc(pool, 8)
	ref, _ := heap.Deref(obj, isa.RZ)
	_ = ref.Store64(0, 7, isa.RZ)
	_ = heap.Persist(obj, 8)

	_ = heap.TxBegin(pool)
	_ = heap.TxAddRange(obj, 8)
	_ = ref.Store64(0, 8, isa.RZ)
	_, _ = heap.Crash(nvmsim.DropAllPolicy()) // power loss mid-transaction

	heap2, _ := pmem.NewHeap(as, store, emit.New(trace.Discard{}, emit.Opt), nil)
	pool2, _ := heap2.Open("crash")
	fmt.Println("needs recovery:", heap2.NeedsRecovery(pool2))
	_ = heap2.Recover(pool2)
	ref2, _ := heap2.Deref(obj, isa.RZ)
	w, _ := ref2.Load64(0)
	fmt.Println("recovered value:", w.V)
	// Output:
	// needs recovery: true
	// recovered value: 7
}
