package pmem

import (
	"fmt"
	"sync"
	"sync/atomic"

	"potgo/internal/oid"
)

// MVCC snapshot reads: an epoch-versioned volatile mirror of committed
// object images, so readers traverse persistent structures without taking
// per-OID latches or shard locks while writers commit concurrently.
//
// The mirror never aliases live pool bytes. Every committed transaction
// publishes an immutable post-image copy of each object it touched
// (publication happens inside Tx.Commit, after the commit point, while the
// committer still holds its shard write locks), headed on a per-object
// version chain. Readers pin the global epoch in a fixed registry slot and
// resolve every object against that epoch; superseded versions are freed
// only once no reader pins an epoch that can still see them.
//
// Epoch protocol. The global epoch G starts at 1. A commit (serialized by
// publishMu) works at D = G+1: it demotes each touched object's current
// head (death = D), pushes the new post-image (borne = D, death = ∞), and
// only then advances G to D. A version is visible to a reader pinned at E
// iff borne <= E < death. Chains are newest-first with strictly decreasing
// deaths, so the version visible at E is the LAST chain entry whose death
// exceeds E. Because G advances after all of a commit's publications, a
// reader pinned at E <= G_old can never observe half of a multi-object
// commit: every object it resolves still shows the pre-commit version.
//
// Pinning. Pin claims a free registry slot (CAS from 0) with the epoch it
// loaded, then revalidates: while G has moved past the stored epoch, the
// slot is restored to the fresh G and re-checked. Reclamation loads G
// FIRST and scans the slots second; under Go's sequentially consistent
// atomics this closes the pin/reclaim race — if the reclaimer's slot scan
// missed a just-claimed pin, the claim follows the scan in the total order,
// so the reader's revalidation load of G returns at least the value the
// reclaimer used, and the reader ends up pinned at an epoch no lower than
// the reclamation horizon.
//
// Reclamation horizon. minEpoch = min(G at load, every pinned epoch). A
// version with death <= minEpoch is invisible to every current pin (each
// pinned E >= minEpoch >= death fails E < death) and to every future pin
// (future E >= G >= minEpoch), so freeing it is safe. Versions and entries
// recycle through freelists, keeping the steady-state overwrite path
// allocation-free.
//
// Crash interaction. The mirror is volatile: Heap.Crash and CrashClean
// reset it, and the store is reseeded from the recovered durable bytes at
// the next mount. Reclamation itself emits no persistence-domain events —
// armed crash events fire from concurrent writers, which is exactly the
// window the crashtest MVCC campaign probes.

const (
	// DefaultPinSlots sizes the reader pin registry. Pin returns nil when
	// every slot is claimed; callers fall back to the latched read path.
	DefaultPinSlots = 64
	// mvBuckets is the version index's bucket count (power of two).
	mvBuckets = 1024
	// mvDeathInf marks a version that is still current.
	mvDeathInf = ^uint64(0)
)

// mvVersion is one immutable committed post-image of an object. buf is
// written once, inside the publishing commit (plus the same-commit
// duplicate-record overwrite, which happens before the version is visible
// to any reader), and never mutated afterwards.
type mvVersion struct {
	borne uint64 // epoch at which this version became current
	death uint64 // epoch at which it was superseded (mvDeathInf = current)
	buf   []byte
	next  *mvVersion // older
}

// mvEntry heads one object's version chain inside a bucket's entry list.
type mvEntry struct {
	oid  oid.OID
	head *mvVersion // newest first, deaths strictly decreasing
	next *mvEntry
}

type mvBucket struct {
	mu   sync.Mutex
	head *mvEntry
}

// PinSlot is one reader registration: a padded epoch word (0 = free) plus
// a back-pointer so the slot itself satisfies the snapshot-view interface
// of internal/pds without boxing.
type PinSlot struct {
	epoch uint64
	m     *MVCC
	_     [48]byte // pad to a cache line: slots are scanned and CASed hot
}

// Epoch returns the epoch this slot is pinned at.
func (s *PinSlot) Epoch() uint64 { return atomic.LoadUint64(&s.epoch) }

// SnapDeref resolves an object against the slot's pinned epoch, returning
// the committed post-image visible at that epoch. ok=false means the
// mirror cannot serve the object (never seeded, or not visible at the
// epoch); the caller falls back to a latched read.
//
//potlint:snapshot-read
func (s *PinSlot) SnapDeref(o oid.OID) ([]byte, bool) {
	return s.m.snapAt(atomic.LoadUint64(&s.epoch), o)
}

// MVCC is the epoch-versioned mirror attached to a heap (EnableMVCC).
type MVCC struct {
	g         uint64 // global epoch, atomic
	hint      uint64 // rotating slot-claim start, atomic
	stale     uint64 // nonzero: mutation mode, readers pin this frozen epoch
	publishMu sync.Mutex
	slots     []PinSlot
	buckets   [mvBuckets]mvBucket

	// freelists recycle version nodes (with their bufs) and entries so the
	// steady-state overwrite publish path allocates nothing.
	freeMu sync.Mutex
	freeV  *mvVersion
	freeE  *mvEntry

	publishes uint64 // versions published, atomic
	reclaimed uint64 // versions freed, atomic
}

// NewMVCC builds a mirror with the given pin-registry size.
func NewMVCC(pinSlots int) *MVCC {
	if pinSlots <= 0 {
		pinSlots = DefaultPinSlots
	}
	m := &MVCC{slots: make([]PinSlot, pinSlots)}
	for i := range m.slots {
		m.slots[i].m = m
	}
	atomic.StoreUint64(&m.g, 1)
	return m
}

// Epoch returns the current global epoch.
func (m *MVCC) Epoch() uint64 { return atomic.LoadUint64(&m.g) }

// Stats returns (versions published, versions reclaimed).
func (m *MVCC) Stats() (publishes, reclaimed uint64) {
	return atomic.LoadUint64(&m.publishes), atomic.LoadUint64(&m.reclaimed)
}

func (m *MVCC) bucket(o oid.OID) *mvBucket {
	// splitmix64 finalizer (see LatchTable.Slot): well distributed over
	// both the pool and offset halves of the OID.
	x := uint64(o)
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return &m.buckets[x&(mvBuckets-1)]
}

// Pin claims a registry slot at the current epoch. Returns nil when the
// registry is exhausted — the caller must fall back to a latched read.
// Allocation-free.
//
//potlint:snapshot-read
func (m *MVCC) Pin() *PinSlot {
	staleAt := atomic.LoadUint64(&m.stale)
	n := uint64(len(m.slots))
	start := atomic.AddUint64(&m.hint, 1)
	for i := uint64(0); i < n; i++ {
		s := &m.slots[(start+i)%n]
		if staleAt != 0 {
			// Mutation mode: pin the frozen epoch with no revalidation —
			// the deliberately stale snapshot the SI checker must catch.
			if atomic.CompareAndSwapUint64(&s.epoch, 0, staleAt) {
				return s
			}
			continue
		}
		e := atomic.LoadUint64(&m.g)
		if atomic.CompareAndSwapUint64(&s.epoch, 0, e) {
			// Revalidate until the published epoch matches the global:
			// see the pin/reclaim ordering argument in the package
			// comment above.
			for {
				g := atomic.LoadUint64(&m.g)
				if g == e {
					return s
				}
				atomic.StoreUint64(&s.epoch, g)
				e = g
			}
		}
	}
	return nil
}

// Unpin releases a pinned slot.
//
//potlint:snapshot-read
func (m *MVCC) Unpin(s *PinSlot) { atomic.StoreUint64(&s.epoch, 0) }

// snapAt resolves o at epoch e: the last chain version whose death exceeds
// e, provided it was already borne. The returned buf is immutable while
// any pin that can see it is held (reclamation's horizon proof covers the
// freelist recycle), so handing it out past the bucket lock is safe.
//
//potlint:snapshot-read
func (m *MVCC) snapAt(e uint64, o oid.OID) ([]byte, bool) {
	b := m.bucket(o)
	b.mu.Lock()
	for en := b.head; en != nil; en = en.next {
		if en.oid != o {
			continue
		}
		var vis *mvVersion
		for v := en.head; v != nil; v = v.next {
			if v.death > e {
				vis = v
			} else {
				break // deaths strictly decrease down the chain
			}
		}
		if vis == nil || vis.borne > e {
			b.mu.Unlock()
			return nil, false
		}
		buf := vis.buf
		b.mu.Unlock()
		return buf, true
	}
	b.mu.Unlock()
	return nil, false
}

// minEpoch computes the reclamation horizon. The global epoch MUST be
// loaded before the slot scan — the reverse order can compute a horizon
// above a just-claimed pin's epoch and free versions that pin still needs.
func (m *MVCC) minEpoch() uint64 {
	min := atomic.LoadUint64(&m.g)
	for i := range m.slots {
		if e := atomic.LoadUint64(&m.slots[i].epoch); e != 0 && e < min {
			min = e
		}
	}
	return min
}

// --- freelists ---

func (m *MVCC) newVersion(size int) *mvVersion {
	m.freeMu.Lock()
	v := m.freeV
	if v != nil {
		m.freeV = v.next
	}
	m.freeMu.Unlock()
	if v == nil {
		v = &mvVersion{}
	}
	v.next = nil
	if cap(v.buf) < size {
		v.buf = make([]byte, size)
	}
	v.buf = v.buf[:size]
	return v
}

func (m *MVCC) freeVersion(v *mvVersion) {
	m.freeMu.Lock()
	v.next = m.freeV
	m.freeV = v
	m.freeMu.Unlock()
}

func (m *MVCC) newEntry(o oid.OID) *mvEntry {
	m.freeMu.Lock()
	en := m.freeE
	if en != nil {
		m.freeE = en.next
	}
	m.freeMu.Unlock()
	if en == nil {
		en = &mvEntry{}
	}
	en.oid, en.head, en.next = o, nil, nil
	return en
}

func (m *MVCC) freeEntry(en *mvEntry) {
	en.head = nil
	m.freeMu.Lock()
	en.next = m.freeE
	m.freeE = en
	m.freeMu.Unlock()
}

// --- publication (called from Tx.Commit under publishMu) ---

func (m *MVCC) findEntryLocked(b *mvBucket, o oid.OID) *mvEntry {
	for en := b.head; en != nil; en = en.next {
		if en.oid == o {
			return en
		}
	}
	return nil
}

// publishRecord installs the committed post-image of [o, o+size) at epoch
// d, pruning chain suffixes invisible below limit. A head already borne at
// d is a same-commit duplicate (recAlloc + recData of one fresh object):
// its buf is overwritten in place, which no reader can observe because the
// commit's epoch advance has not happened yet.
func (m *MVCC) publishRecord(h *Heap, p *Pool, o oid.OID, size uint32, d, limit uint64) error {
	b := m.bucket(o)
	b.mu.Lock()
	en := m.findEntryLocked(b, o)
	if en == nil {
		en = m.newEntry(o)
		en.next = b.head
		b.head = en
	}
	var v *mvVersion
	if en.head != nil && en.head.borne == d {
		v = en.head
		if cap(v.buf) < int(size) {
			v.buf = make([]byte, size)
		}
		v.buf = v.buf[:size]
	} else {
		v = m.newVersion(int(size))
		v.borne, v.death = d, mvDeathInf
		if en.head != nil && en.head.death == mvDeathInf {
			en.head.death = d
		}
		v.next = en.head
		en.head = v
		atomic.AddUint64(&m.publishes, 1)
	}
	err := h.AS.ReadAt(p.region.Base+uint64(o.Offset()), v.buf)
	m.pruneLocked(en, limit)
	b.mu.Unlock()
	if err != nil {
		return fmt.Errorf("pmem: mvcc publish %v: %w", o, err)
	}
	return nil
}

// demoteRecord marks o's current version dead at epoch d with no successor
// (the object was freed). A head borne at d was allocated and freed inside
// the same commit: it is dropped entirely.
func (m *MVCC) demoteRecord(o oid.OID, d, limit uint64) {
	b := m.bucket(o)
	b.mu.Lock()
	if en := m.findEntryLocked(b, o); en != nil {
		if en.head != nil && en.head.death == mvDeathInf {
			if en.head.borne == d {
				dead := en.head
				en.head = dead.next
				m.freeVersion(dead)
			} else {
				en.head.death = d
			}
		}
		m.pruneLocked(en, limit)
	}
	b.mu.Unlock()
}

// pruneLocked frees the chain suffix whose deaths are at or below limit
// (invisible to every current and future pin). Caller holds the bucket
// lock. Suppressed in stale-mutation mode so the seeded stale snapshot
// keeps its versions alive.
func (m *MVCC) pruneLocked(en *mvEntry, limit uint64) int {
	if atomic.LoadUint64(&m.stale) != 0 {
		return 0
	}
	n := 0
	var prev *mvVersion
	for v := en.head; v != nil; v = v.next {
		if v.death <= limit {
			if prev == nil {
				en.head = nil
			} else {
				prev.next = nil
			}
			for v != nil {
				nx := v.next
				m.freeVersion(v)
				v = nx
				n++
			}
			break
		}
		prev = v
	}
	if n > 0 {
		atomic.AddUint64(&m.reclaimed, uint64(n))
	}
	return n
}

// Reclaim sweeps every version chain, freeing versions no pinned or future
// reader can see, and unlinking entries whose objects are fully dead. It
// runs concurrently with readers and publishing commits (bucket-granular
// locking; it does not take publishMu). Returns the number of versions
// freed.
func (m *MVCC) Reclaim() int {
	if atomic.LoadUint64(&m.stale) != 0 {
		return 0
	}
	limit := m.minEpoch()
	freed := 0
	for i := range m.buckets {
		b := &m.buckets[i]
		b.mu.Lock()
		var prev *mvEntry
		en := b.head
		for en != nil {
			freed += m.pruneLocked(en, limit)
			nx := en.next
			if en.head == nil {
				if prev == nil {
					b.head = nx
				} else {
					prev.next = nx
				}
				m.freeEntry(en)
			} else {
				prev = en
			}
			en = nx
		}
		b.mu.Unlock()
	}
	return freed
}

// ChainLen returns the version-chain length for one object (0 when the
// mirror holds no entry). Introspection for tests and benchmarks that
// bound memory pressure under hot-key skew.
func (m *MVCC) ChainLen(o oid.OID) int {
	b := m.bucket(o)
	b.mu.Lock()
	defer b.mu.Unlock()
	en := m.findEntryLocked(b, o)
	if en == nil {
		return 0
	}
	n := 0
	for v := en.head; v != nil; v = v.next {
		n++
	}
	return n
}

// MaxChainLen returns the longest version chain in the mirror — the
// hot-key memory-pressure gauge: a pinned reader keeps every version
// younger than its epoch alive, so a write-hot object's chain grows until
// the pin releases and Reclaim prunes it back.
func (m *MVCC) MaxChainLen() int {
	max := 0
	for i := range m.buckets {
		b := &m.buckets[i]
		b.mu.Lock()
		for en := b.head; en != nil; en = en.next {
			n := 0
			for v := en.head; v != nil; v = v.next {
				n++
			}
			if n > max {
				max = n
			}
		}
		b.mu.Unlock()
	}
	return max
}

// Seed publishes the current live bytes of [o, o+size) as the object's
// initial version (borne 0: visible at every epoch). Called at mount while
// the store is still private; the mirror must be empty for o.
func (m *MVCC) Seed(h *Heap, p *Pool, o oid.OID, size uint32) error {
	b := m.bucket(o)
	b.mu.Lock()
	en := m.findEntryLocked(b, o)
	if en == nil {
		en = m.newEntry(o)
		en.next = b.head
		b.head = en
	}
	v := m.newVersion(int(size))
	v.borne, v.death = 0, mvDeathInf
	if en.head != nil && en.head.death == mvDeathInf {
		// Re-seeding an object that already has a live version (Reprime
		// after repair): replace the chain outright — the store is private
		// during seeding, no reader holds a pin.
		en.head = nil
	}
	v.next = en.head
	en.head = v
	err := h.AS.ReadAt(p.region.Base+uint64(o.Offset()), v.buf)
	b.mu.Unlock()
	if err != nil {
		return fmt.Errorf("pmem: mvcc seed %v: %w", o, err)
	}
	return nil
}

// Reset discards the whole mirror: a crash took the volatile state with
// it. The store is reseeded from the recovered durable bytes at remount.
func (m *MVCC) Reset() {
	m.publishMu.Lock()
	for i := range m.buckets {
		b := &m.buckets[i]
		b.mu.Lock()
		b.head = nil
		b.mu.Unlock()
	}
	for i := range m.slots {
		atomic.StoreUint64(&m.slots[i].epoch, 0)
	}
	atomic.StoreUint64(&m.g, 1)
	atomic.StoreUint64(&m.stale, 0)
	m.freeMu.Lock()
	m.freeV, m.freeE = nil, nil
	m.freeMu.Unlock()
	m.publishMu.Unlock()
}

// MutateStaleReads is the deliberately-injected snapshot bug for the
// mutation-discipline check: it freezes every subsequent Pin at the
// current epoch and suppresses reclamation, so readers keep observing a
// stale committed prefix while writers advance. The SI checker must
// report the resulting stale-then-fresh inversions; a harness that stays
// green under this mutation proves nothing.
func (m *MVCC) MutateStaleReads() {
	atomic.StoreUint64(&m.stale, atomic.LoadUint64(&m.g))
}

// ClearStaleMutation restores honest pinning.
func (m *MVCC) ClearStaleMutation() { atomic.StoreUint64(&m.stale, 0) }

// --- heap integration ---

// EnableMVCC attaches the epoch-versioned mirror to the heap (first call)
// and marks pool p as versioned: commits touching p publish post-images,
// and snapshot reads of p's objects resolve against the mirror.
func (h *Heap) EnableMVCC(p *Pool) {
	if h.mvcc == nil {
		h.mvcc = NewMVCC(DefaultPinSlots)
	}
	p.mvcc = true
}

// MVCC returns the heap's version mirror (nil when never enabled).
func (h *Heap) MVCC() *MVCC { return h.mvcc }

// mvccPublish publishes a committed transaction's post-images. Called from
// Tx.Commit after the commit point (the durable state already reflects the
// transaction) and before the Tx is recycled; the committer still holds
// its shard write locks, so the live bytes it copies are stable. The
// epoch advance at the end is the transaction's visibility point for
// snapshot readers — all of its objects appear atomically.
//
//potlint:noalloc
func (h *Heap) mvccPublish(st *txState) error {
	m := h.mvcc
	any := false
	for i := range st.records {
		if p, ok := h.open[st.records[i].oid.Pool()]; ok && p.mvcc {
			any = true
			break
		}
	}
	if !any {
		return nil
	}
	m.publishMu.Lock()
	d := atomic.LoadUint64(&m.g) + 1
	limit := m.minEpoch()
	var err error
	for i := range st.records {
		r := &st.records[i]
		p, ok := h.open[r.oid.Pool()]
		if !ok || !p.mvcc {
			continue
		}
		switch r.kind {
		case recData, recAlloc:
			if r.size == 0 {
				continue
			}
			if perr := m.publishRecord(h, p, r.oid, r.size, d, limit); perr != nil && err == nil {
				err = perr
			}
		case recFree:
			m.demoteRecord(r.oid, d, limit)
		}
	}
	atomic.StoreUint64(&m.g, d)
	m.publishMu.Unlock()
	return err
}
