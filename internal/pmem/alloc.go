package pmem

import (
	"fmt"
	"sync/atomic"

	"potgo/internal/isa"
	"potgo/internal/oid"
)

// Emitted-cost constants for the allocator and transaction machinery,
// approximating the instruction footprint of the corresponding libpmemobj
// paths (reserve/publish bookkeeping, ulog management) beyond the explicit
// persistent loads/stores this implementation performs.
const (
	allocWork   = 120
	freeWork    = 60
	txBeginWork = 80
	txLogWork   = 300
	txEndWork   = 100
)

// Alloc is pmalloc (paper Table 1): allocate size bytes in pool p and return
// the ObjectID of the first byte.
//
// The allocator is a persistent segregated free list. Every block is
// [size-word][payload]; freed blocks are threaded through their payload's
// first word onto a per-class list whose heads live in the pool header.
// All metadata accesses are persistent accesses, so in BASE mode they pay
// software translation and in OPT mode they become nvld/nvst — exactly the
// library acceleration the paper describes in §3.3.
func (h *Heap) Alloc(p *Pool, size uint32) (oid.OID, error) {
	o, _, err := h.alloc(p, size)
	return o, err
}

// alloc additionally reports the free-list class the block was popped from
// (-1 for a bump allocation), so the transactional path can make the pop
// durable before the caller overwrites the block. Like Free, the
// non-transactional Alloc makes no crash-consistency promise.
func (h *Heap) alloc(p *Pool, size uint32) (oid.OID, int, error) {
	if size == 0 {
		return oid.Null, -1, fmt.Errorf("pmem: zero-byte allocation in pool %q", p.b.name)
	}
	atomic.AddUint64(&h.Metrics.Allocs, 1)
	atomic.AddUint64(&h.Metrics.AllocBytes, uint64(size))
	class, classSize := classOf(size)
	hdr := h.DirectRef(p, 0)
	h.Emit.Jump()             // call into the allocator
	h.Emit.Compute(allocWork) // size class, handle checks, reserve/publish bookkeeping

	var blockOff uint64
	if class >= 0 {
		head, err := hdr.Load64(p.freeHeadOff(class))
		if err != nil {
			return oid.Null, -1, err
		}
		if head.V != 0 {
			// Pop: the next pointer lives in the freed payload.
			blockOff = head.V
			blk := h.DirectRef(p, uint32(blockOff+blockHeaderBytes))
			blk.reg = head.Reg
			next, err := blk.Load64(0)
			if err != nil {
				return oid.Null, -1, err
			}
			if err := hdr.Store64(p.freeHeadOff(class), next.V, next.Reg); err != nil {
				return oid.Null, -1, err
			}
			return p.OID(uint32(blockOff + blockHeaderBytes)), class, nil
		}
	}

	// Bump allocation.
	bump, err := hdr.Load64(offBump)
	if err != nil {
		return oid.Null, -1, err
	}
	blockOff = bump.V
	newBump := blockOff + blockHeaderBytes + uint64(classSize)
	if newBump > p.b.size {
		return oid.Null, -1, fmt.Errorf("pmem: pool %q out of memory (%d requested, %d free)",
			p.b.name, size, p.b.size-blockOff)
	}
	h.Emit.Compute(6, bump.Reg)
	if err := hdr.Store64(offBump, newBump, bump.Reg); err != nil {
		return oid.Null, -1, err
	}
	// Record the block's payload size in its header word.
	blk := h.DirectRef(p, uint32(blockOff))
	blk.reg = bump.Reg
	if err := blk.Store64(0, uint64(classSize), isa.RZ); err != nil {
		return oid.Null, -1, err
	}
	return p.OID(uint32(blockOff + blockHeaderBytes)), -1, nil
}

// Free is pfree: return the object's block to its size-class free list.
// Large (over-class) blocks are currently leaked back to the bump region
// only on pool recreation, as in many real log-structured pools.
func (h *Heap) Free(o oid.OID) error {
	p, ok := h.open[o.Pool()]
	if !ok {
		return fmt.Errorf("pmem: free in unopened pool %d", o.Pool())
	}
	if o.Offset() < blockHeaderBytes {
		return fmt.Errorf("pmem: free of non-heap ObjectID %v", o)
	}
	blockOff := o.Offset() - blockHeaderBytes
	if err := p.checkOffset(blockOff, blockHeaderBytes); err != nil {
		return err
	}
	atomic.AddUint64(&h.Metrics.Frees, 1)
	blk := h.DirectRef(p, blockOff)
	szw, err := blk.Load64(0)
	if err != nil {
		return err
	}
	class := -1
	for i, c := range sizeClasses {
		if uint32(szw.V) == c {
			class = i
			break
		}
	}
	h.Emit.Jump()
	h.Emit.Compute(freeWork, szw.Reg)
	if class < 0 {
		// Large block: drop it (bump memory is reclaimed when the pool
		// is recreated).
		return nil
	}
	hdr := h.DirectRef(p, 0)
	head, err := hdr.Load64(p.freeHeadOff(class))
	if err != nil {
		return err
	}
	// Thread the old head through the payload's first word.
	pay := h.DirectRef(p, o.Offset())
	if err := pay.Store64(0, head.V, head.Reg); err != nil {
		return err
	}
	return hdr.Store64(p.freeHeadOff(class), uint64(blockOff), isa.RZ)
}

// AllocatedBytes reports the bump watermark (diagnostics).
func (h *Heap) AllocatedBytes(p *Pool) uint64 {
	return h.read64(p, offBump) - p.dataStart()
}

// freeDurable is Free with crash-safe ordering: the block's next pointer is
// made durable (own fence) before the head store that publishes it, so no
// crash can expose a durable free list whose head points at a block with a
// volatile next word. Transaction commit/abort and recovery use it; the
// plain Free stays single-fence-free because non-transactional frees make
// no crash-consistency promise.
func (h *Heap) freeDurable(o oid.OID) error {
	p, ok := h.open[o.Pool()]
	if !ok {
		return fmt.Errorf("pmem: free in unopened pool %d", o.Pool())
	}
	if o.Offset() < blockHeaderBytes {
		return fmt.Errorf("pmem: free of non-heap ObjectID %v", o)
	}
	blockOff := o.Offset() - blockHeaderBytes
	if err := p.checkOffset(blockOff, blockHeaderBytes); err != nil {
		return err
	}
	blk := h.DirectRef(p, blockOff)
	szw, err := blk.Load64(0)
	if err != nil {
		return err
	}
	class := -1
	for i, c := range sizeClasses {
		if uint32(szw.V) == c {
			class = i
			break
		}
	}
	h.Emit.Jump()
	h.Emit.Compute(freeWork, szw.Reg)
	if class < 0 {
		return nil // large block: dropped, as in Free
	}
	hdr := h.DirectRef(p, 0)
	head, err := hdr.Load64(p.freeHeadOff(class))
	if err != nil {
		return err
	}
	pay := h.DirectRef(p, o.Offset())
	if err := pay.Store64(0, head.V, head.Reg); err != nil {
		return err
	}
	// Persist the size word together with the next pointer: an aborted
	// transactional allocation reaches here with its Alloc-time size word
	// still volatile, and a block must never be durably reachable from a
	// free list without its class being durable too.
	if err := h.Persist(p.OID(blockOff), blockHeaderBytes+8); err != nil {
		return err
	}
	if err := hdr.Store64(p.freeHeadOff(class), uint64(blockOff), isa.RZ); err != nil {
		return err
	}
	return h.Persist(p.OID(p.freeHeadOff(class)), 8)
}

// recoverFree applies a logged free during recovery. Recovery itself can be
// interrupted by a crash and re-run over the same log, so the application
// must be idempotent: if the block already sits on its free list (a
// previous, interrupted recovery threaded it), threading it again would
// create a cycle and double-allocation. The membership walk is bounded as a
// corruption backstop.
func (h *Heap) recoverFree(o oid.OID) error {
	p, ok := h.open[o.Pool()]
	if !ok {
		return fmt.Errorf("pmem: recover free in unopened pool %d", o.Pool())
	}
	if o.Offset() < blockHeaderBytes {
		return fmt.Errorf("pmem: recover free of non-heap ObjectID %v", o)
	}
	blockOff := o.Offset() - blockHeaderBytes
	if err := p.checkOffset(blockOff, blockHeaderBytes); err != nil {
		return err
	}
	size := h.read64(p, blockOff)
	class := -1
	for i, c := range sizeClasses {
		if size == uint64(c) {
			class = i
			break
		}
	}
	if class < 0 {
		return nil
	}
	const maxWalk = 1 << 20
	cur := h.read64(p, p.freeHeadOff(class))
	for steps := 0; cur != 0 && steps < maxWalk; steps++ {
		if cur == uint64(blockOff) {
			return nil // already threaded
		}
		if uint64(cur)+blockHeaderBytes+8 > p.b.size {
			return fmt.Errorf("pmem: recover: corrupt free list in pool %q (class %d)", p.b.name, class)
		}
		cur = h.read64(p, uint32(cur)+blockHeaderBytes)
	}
	return h.freeDurable(o)
}
