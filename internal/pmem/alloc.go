package pmem

import (
	"encoding/binary"
	"fmt"
	"sort"
	"sync/atomic"

	"potgo/internal/isa"
	"potgo/internal/oid"
)

// Emitted-cost constants for the allocator and transaction machinery,
// approximating the instruction footprint of the corresponding libpmemobj
// paths (reserve/publish bookkeeping, ulog management) beyond the explicit
// persistent loads/stores this implementation performs.
const (
	allocWork   = 120
	freeWork    = 60
	txBeginWork = 80
	txLogWork   = 300
	txEndWork   = 100
)

// The allocator is a size-class slab allocator (Pangolin-style). Class
// allocations are served from spans: contiguous runs of equally sized slots
// carved off the bump region, headed by a persistent 24-byte span header
// whose occupancy bitmap is the durable ground truth of which slots are
// live. Spans of one class are chained through their headers from the
// per-class head word in the pool header (offFreeHead + 8*class).
//
// Volatile state mirrors the durable layout for speed: a sorted span index
// for O(log n) payload→span resolution and a per-class LIFO stack of free
// slots, rebuilt from the bitmaps on pool open. Allocation pops a slot and
// sets its bit (a volatile store — transactional allocations become durable
// at commit when the bitmap word is persisted under the commit fence);
// frees clear the bit and push the slot back. Because recovery decides a
// slot's fate from its bitmap bit rather than from free-list pointer
// threading, the PR 3 reuse hazard (a popped block whose first payload word
// was the list's next pointer) is structurally gone: no allocator metadata
// ever lives inside a payload.
//
// Large requests (beyond the biggest class) are bump-allocated exactly,
// with no header; they are dropped on free, as before.

// spanInfo is one carved span in the volatile index.
type spanInfo struct {
	base  uint32 // pool offset of the span header
	hdr   uint16 // header size: 24, plus the checksum array in FT pools
	class uint16
	slots uint16
}

func (s spanInfo) classSize() uint32 { return sizeClasses[s.class] }

// end is the pool offset one past the span's last slot.
func (s spanInfo) end() uint64 {
	return uint64(s.base) + uint64(s.hdr) + uint64(s.slots)*uint64(s.classSize())
}

// slotOff is the pool offset of slot i's payload.
func (s spanInfo) slotOff(slot uint32) uint32 {
	return s.base + uint32(s.hdr) + slot*s.classSize()
}

// csumOff is the pool offset of slot i's stored CRC32C (FT spans only).
func (s spanInfo) csumOff(slot uint32) uint32 {
	return s.base + spanOffCsum + 4*slot
}

// allocState is a pool's volatile slab index: the span index sorted by base
// offset, and one LIFO free-slot stack per class. Stack entries pack the
// span index and slot number (spanIdx<<8 | slot); spans only ever append at
// higher offsets, so indices into the sorted slice stay stable.
type allocState struct {
	spans []spanInfo
	free  [len(sizeClasses)][]uint32
}

// lookup resolves a payload offset to its span and slot. Misses mean the
// offset is a large (bump) allocation or not a slab payload at all.
func (st *allocState) lookup(off uint32) (spanIdx int, slot uint32, ok bool) {
	i := sort.Search(len(st.spans), func(i int) bool { return st.spans[i].base > off })
	if i == 0 {
		return 0, 0, false
	}
	sp := st.spans[i-1]
	if uint64(off) >= sp.end() || off < sp.base+uint32(sp.hdr) {
		return 0, 0, false
	}
	rel := off - sp.base - uint32(sp.hdr)
	if rel%sp.classSize() != 0 {
		return 0, 0, false
	}
	return i - 1, rel / sp.classSize(), true
}

// lookupAny is lookup without the slot-alignment requirement: any offset
// inside a slot's payload resolves to that slot. Checksum maintenance uses
// it, because undo records may snapshot interior ranges of an object.
func (st *allocState) lookupAny(off uint32) (spanIdx int, slot uint32, ok bool) {
	i := sort.Search(len(st.spans), func(i int) bool { return st.spans[i].base > off })
	if i == 0 {
		return 0, 0, false
	}
	sp := st.spans[i-1]
	if uint64(off) >= sp.end() || off < sp.base+uint32(sp.hdr) {
		return 0, 0, false
	}
	return i - 1, (off - sp.base - uint32(sp.hdr)) / sp.classSize(), true
}

// Alloc is pmalloc (paper Table 1): allocate size bytes in pool p and return
// the ObjectID of the first byte. All metadata accesses are persistent
// accesses, so in BASE mode they pay software translation and in OPT mode
// they become nvld/nvst — exactly the library acceleration the paper
// describes in §3.3. Like Free, the non-transactional Alloc makes no
// crash-consistency promise (the slot bit it sets stays volatile until some
// later fence drains it); carving a fresh span is always made durable
// before the span is published.
func (h *Heap) Alloc(p *Pool, size uint32) (oid.OID, error) {
	return h.alloc(p, size)
}

func (h *Heap) alloc(p *Pool, size uint32) (oid.OID, error) {
	o, sp, slot, slab, err := h.allocReserve(p, size)
	if err != nil {
		return oid.Null, err
	}
	if slab {
		if err := h.storeSlabBit(p, sp, slot, true); err != nil {
			return oid.Null, err
		}
	}
	return o, nil
}

// allocReserve picks the block — popping a free slot or carving a fresh
// span — WITHOUT setting the slot's occupancy bit. The split lets a
// transactional caller persist its undo record between the choice and the
// claim (write-ahead: the recAlloc record must be durable before the bit
// can possibly reach the media, or a torn crash in between leaks the
// slot). slab is false for large bump allocations, which have no bit.
func (h *Heap) allocReserve(p *Pool, size uint32) (o oid.OID, sp spanInfo, slot uint32, slab bool, err error) {
	if size == 0 {
		return oid.Null, spanInfo{}, 0, false, fmt.Errorf("pmem: zero-byte allocation in pool %q", p.b.name)
	}
	atomic.AddUint64(&h.Metrics.Allocs, 1)
	atomic.AddUint64(&h.Metrics.AllocBytes, uint64(size))
	class, classSize := classOf(size)
	h.Emit.Jump()             // call into the allocator
	h.Emit.Compute(allocWork) // size class, handle checks, reserve/publish bookkeeping

	if class < 0 {
		// Large: exact bump allocation, no header.
		hdr := h.DirectRef(p, 0)
		bump, err := hdr.Load64(offBump)
		if err != nil {
			return oid.Null, spanInfo{}, 0, false, err
		}
		newBump := bump.V + uint64(classSize)
		if newBump > p.b.size {
			return oid.Null, spanInfo{}, 0, false, fmt.Errorf("pmem: pool %q out of memory (%d requested, %d free)",
				p.b.name, size, p.b.size-bump.V)
		}
		h.Emit.Compute(6, bump.Reg)
		if err := hdr.Store64(offBump, newBump, bump.Reg); err != nil {
			return oid.Null, spanInfo{}, 0, false, err
		}
		return p.OID(uint32(bump.V)), spanInfo{}, 0, false, nil
	}

	st := p.alloc
	if len(st.free[class]) == 0 {
		if err := h.carveSpan(p, class, classSize); err != nil {
			return oid.Null, spanInfo{}, 0, false, err
		}
	}
	stack := st.free[class]
	ent := stack[len(stack)-1]
	st.free[class] = stack[:len(stack)-1]
	sp = st.spans[ent>>8]
	slot = ent & 0xff
	return p.OID(sp.slotOff(slot)), sp, slot, true, nil
}

// storeSlabBit sets or clears one slot's occupancy bit in its span's bitmap
// word (a persistent read-modify-write; durability is the caller's concern).
func (h *Heap) storeSlabBit(p *Pool, sp spanInfo, slot uint32, set bool) error {
	bm := h.DirectRef(p, sp.base+spanOffBitmap)
	w, err := bm.Load64(0)
	if err != nil {
		return err
	}
	v := w.V &^ (1 << slot)
	if set {
		v = w.V | 1<<slot
	}
	r := h.Emit.Compute(2, w.Reg) // bit mask + or/andn
	return bm.Store64(0, v, r)
}

// slabBit reads one slot's occupancy bit functionally (no emission).
func (h *Heap) slabBit(p *Pool, sp spanInfo, slot uint32) bool {
	return h.read64(p, sp.base+spanOffBitmap)&(1<<slot) != 0
}

// carveSpan cuts a fresh all-free span for the class off the bump region
// and pushes every slot onto the class's free stack (slot 0 on top). The
// span is shrunk to fit the remaining space when the preferred slot count
// does not fit (down to a single slot). Publication is crash-ordered: the
// span header (empty bitmap and the chain link to the previous head) is
// persisted under its own fence before the bump pointer and chain head
// stores, so any surviving head value references a fully durable span. A
// crash between the two fences at worst leaks the carved bytes, exactly as
// the previous bump allocator leaked a block whose bump advance never
// became durable; a crash after publication merely leaves an empty span
// that reopening puts back on the free stacks.
func (h *Heap) carveSpan(p *Pool, class int, classSize uint32) error {
	hdr := h.DirectRef(p, 0)
	bump, err := hdr.Load64(offBump)
	if err != nil {
		return err
	}
	ft := p.ft()
	// Shrink-to-fit: the header grows with the slot count in FT pools
	// (4 checksum bytes per slot), so fit is re-checked per candidate.
	slots := classSlots[class]
	for slots > 0 {
		need := uint64(spanHdrBytes(slots, ft)) + uint64(slots)*uint64(classSize)
		if bump.V+need <= p.b.size {
			break
		}
		slots--
	}
	if slots == 0 {
		return fmt.Errorf("pmem: pool %q out of memory (%d requested, %d free)",
			p.b.name, classSize, p.b.size-bump.V)
	}
	hdrBytes := spanHdrBytes(slots, ft)
	base := uint32(bump.V)
	newBump := bump.V + uint64(hdrBytes) + uint64(slots)*uint64(classSize)
	h.Emit.Compute(6, bump.Reg)

	// Write and persist the span header before anything references it.
	span := h.DirectRef(p, base)
	if err := span.Store64(spanOffWord0, spanWord0(class, slots, ft), isa.RZ); err != nil {
		return err
	}
	head, err := hdr.Load64(p.freeHeadOff(class))
	if err != nil {
		return err
	}
	if err := span.Store64(spanOffNext, head.V, head.Reg); err != nil {
		return err
	}
	// Every slot starts free; claiming one is the caller's separate,
	// write-ahead-ordered step.
	if err := span.Store64(spanOffBitmap, 0, isa.RZ); err != nil {
		return err
	}
	// FT spans: the checksum array starts explicitly zeroed — a fresh
	// slot's stored CRC is defined garbage until its first commit fills it.
	for off := uint32(spanOffCsum); off < hdrBytes; off += 8 {
		if err := span.Store64(off, 0, isa.RZ); err != nil {
			return err
		}
	}
	if !ft {
		if err := h.Persist(p.OID(base), hdrBytes); err != nil {
			return err
		}
	} else {
		// The header lines live in the parity-covered data region: fold
		// their parity groups into the same fence.
		if err := h.persistNoFence(p.OID(base), hdrBytes); err != nil {
			return err
		}
		if err := h.ftSyncRangeNoFence(p, base, hdrBytes); err != nil {
			return err
		}
		h.fence()
		atomic.AddUint64(&h.Metrics.Persists, 1)
	}

	// Publish: advance the bump past the span and chain the span in, one
	// fence for both header words.
	if err := hdr.Store64(offBump, newBump, bump.Reg); err != nil {
		return err
	}
	if err := hdr.Store64(p.freeHeadOff(class), uint64(base), isa.RZ); err != nil { //potlint:allow allocorder FT branch persists the span header under its own fence just above; only the naming differs
		return err
	}
	if err := h.persistNoFence(p.OID(offBump), 8); err != nil {
		return err
	}
	if err := h.persistNoFence(p.OID(p.freeHeadOff(class)), 8); err != nil {
		return err
	}
	h.fence()
	atomic.AddUint64(&h.Metrics.SpansCarved, 1)

	st := p.alloc
	sp := spanInfo{base: base, hdr: uint16(hdrBytes), class: uint16(class), slots: uint16(slots)}
	idx := uint32(len(st.spans))
	st.spans = append(st.spans, sp)
	for slot := int(slots) - 1; slot >= 0; slot-- {
		st.free[class] = append(st.free[class], idx<<8|uint32(slot))
	}
	return nil
}

// Free is pfree: clear the slot's occupancy bit and push it on its class's
// free stack. Large (over-class) blocks are dropped, reclaimed only on pool
// recreation, as in many real log-structured pools. The bit clear is a
// volatile store — non-transactional frees make no crash-consistency
// promise.
func (h *Heap) Free(o oid.OID) error {
	p, sp, slot, large, err := h.resolveSlot(o, "free")
	if err != nil {
		return err
	}
	atomic.AddUint64(&h.Metrics.Frees, 1)
	h.Emit.Jump()
	h.Emit.Compute(freeWork)
	if large {
		return nil
	}
	if !h.slabBit(p, sp, slot) {
		return fmt.Errorf("pmem: double free of %v in pool %q", o, p.b.name)
	}
	if err := h.storeSlabBit(p, sp, slot, false); err != nil {
		return err
	}
	h.pushFree(p, o.Offset())
	return nil
}

// resolveSlot maps an ObjectID to its pool and span slot. large reports a
// valid data-region offset with no owning span (a bump allocation).
func (h *Heap) resolveSlot(o oid.OID, op string) (p *Pool, sp spanInfo, slot uint32, large bool, err error) {
	p, ok := h.open[o.Pool()]
	if !ok {
		return nil, spanInfo{}, 0, false, fmt.Errorf("pmem: %s in unopened pool %d", op, o.Pool())
	}
	if err := p.checkOffset(o.Offset(), 8); err != nil {
		return nil, spanInfo{}, 0, false, err
	}
	idx, slot, ok := p.alloc.lookup(o.Offset())
	if !ok {
		return p, spanInfo{}, 0, true, nil
	}
	return p, p.alloc.spans[idx], slot, false, nil
}

// pushFree pushes a slab payload offset onto its class's free stack.
func (h *Heap) pushFree(p *Pool, off uint32) {
	st := p.alloc
	idx, slot, ok := st.lookup(off)
	if !ok {
		return
	}
	class := st.spans[idx].class
	st.free[class] = append(st.free[class], uint32(idx)<<8|slot)
}

// AllocatedBytes reports the bump watermark (diagnostics).
func (h *Heap) AllocatedBytes(p *Pool) uint64 {
	return h.read64(p, offBump) - p.dataStart()
}

// SlabStats reports the pool's span count and slot occupancy (volatile
// index reads; diagnostics and the obs slab-occupancy gauges).
func (h *Heap) SlabStats(p *Pool) (spans, slotsTotal, slotsLive int) {
	st := p.alloc
	spans = len(st.spans)
	for _, sp := range st.spans {
		slotsTotal += int(sp.slots)
	}
	slotsLive = slotsTotal
	for _, stack := range st.free {
		slotsLive -= len(stack)
	}
	return spans, slotsTotal, slotsLive
}

// freeDurable is Free with crash-safe ordering: the slot's bitmap bit is
// cleared and persisted under its own fence before the slot is reusable.
// Transaction commit/abort use it; the plain Free stays fence-free because
// non-transactional frees make no crash-consistency promise.
func (h *Heap) freeDurable(o oid.OID) error {
	p, sp, slot, large, err := h.resolveSlot(o, "free")
	if err != nil {
		return err
	}
	h.Emit.Jump()
	h.Emit.Compute(freeWork)
	if large {
		return nil // large block: dropped, as in Free
	}
	if !h.slabBit(p, sp, slot) {
		return fmt.Errorf("pmem: double free of %v in pool %q", o, p.b.name)
	}
	if err := h.storeSlabBit(p, sp, slot, false); err != nil {
		return err
	}
	if err := h.persistBitmapFT(p, sp); err != nil {
		return err
	}
	h.pushFree(p, o.Offset())
	return nil
}

// persistBitmapFT persists a span's bitmap word under its own fence,
// folding the word's parity group into the fence for FT pools.
func (h *Heap) persistBitmapFT(p *Pool, sp spanInfo) error {
	if !p.ft() {
		return h.Persist(p.OID(sp.base+spanOffBitmap), 8)
	}
	if err := h.persistNoFence(p.OID(sp.base+spanOffBitmap), 8); err != nil {
		return err
	}
	if err := h.ftSyncRangeNoFence(p, sp.base+spanOffBitmap, 8); err != nil {
		return err
	}
	h.fence()
	atomic.AddUint64(&h.Metrics.Persists, 1)
	return nil
}

// recoverFree applies a logged free during recovery. Recovery itself can be
// interrupted by a crash and re-run over the same log, so the application
// must be idempotent: the slot's bitmap bit decides. A still-set bit is
// cleared durably and the slot pushed; an already-clear bit (the crash
// dropped the volatile set, or a previous interrupted recovery already
// applied the free) only moves the slot to the top of its free stack, so
// the freed ObjectID is the next one the class hands out — recovery
// converges to the same durable bytes and the same allocation order no
// matter how often it re-runs.
func (h *Heap) recoverFree(o oid.OID) error {
	p, sp, slot, large, err := h.resolveSlot(o, "recover free")
	if err != nil {
		return err
	}
	if large {
		return nil
	}
	if !h.slabBit(p, sp, slot) {
		h.liftFree(p, o.Offset())
		return nil
	}
	if err := h.storeSlabBit(p, sp, slot, false); err != nil {
		return err
	}
	if err := h.persistBitmapFT(p, sp); err != nil {
		return err
	}
	h.pushFree(p, o.Offset())
	return nil
}

// liftFree moves a payload offset's stack entry to the top of its class
// stack, pushing it if absent (recovery-only; O(stack) scan).
func (h *Heap) liftFree(p *Pool, off uint32) {
	st := p.alloc
	idx, slot, ok := st.lookup(off)
	if !ok {
		return
	}
	class := st.spans[idx].class
	ent := uint32(idx)<<8 | slot
	stack := st.free[class]
	for i, e := range stack {
		if e == ent {
			copy(stack[i:], stack[i+1:])
			stack[len(stack)-1] = ent
			return
		}
	}
	st.free[class] = append(stack, ent)
}

// rebuildAllocState reconstructs the volatile slab index from the durable
// span chains (pool open). Chain heads are only ever published after their
// span header's own fence, so every reachable span is fully durable; a
// garbage head would mean a corrupt pool and fails the open. If a published
// span extends past the durable bump pointer (the head store survived a
// torn crash that lost the bump advance), the bump is repaired upward —
// functionally, cache and durable views both, like the rest of open-time
// recovery plumbing.
func (h *Heap) rebuildAllocState(p *Pool) error {
	const maxWalk = 1 << 20
	st := &allocState{}
	bump := h.read64(p, offBump)
	maxEnd := bump
	for class := range sizeClasses {
		cur := h.read64(p, p.freeHeadOff(class))
		for steps := 0; cur != 0; steps++ {
			if steps >= maxWalk {
				return fmt.Errorf("pmem: open %q: span chain class %d longer than %d (cycle?)",
					p.b.name, class, maxWalk)
			}
			if cur < p.dataStart() || cur%8 != 0 || cur+spanHeaderBytes > p.b.size {
				return fmt.Errorf("pmem: open %q: class %d chain holds invalid span %#x",
					p.b.name, class, cur)
			}
			w0 := h.read64(p, uint32(cur))
			c, slots, ft, ok := parseSpanWord0(w0)
			if !ok || c != class {
				return fmt.Errorf("pmem: open %q: span %#x has bad header %#x (chain class %d)",
					p.b.name, cur, w0, class)
			}
			if ft != p.ft() {
				return fmt.Errorf("pmem: open %q: span %#x fault-tolerance flag %v does not match pool",
					p.b.name, cur, ft)
			}
			sp := spanInfo{base: uint32(cur), hdr: uint16(spanHdrBytes(slots, ft)), class: uint16(class), slots: uint16(slots)}
			if sp.end() > p.b.size {
				return fmt.Errorf("pmem: open %q: span %#x (%d slots) overruns the pool",
					p.b.name, cur, slots)
			}
			if sp.end() > maxEnd {
				maxEnd = sp.end()
			}
			st.spans = append(st.spans, sp)
			cur = h.read64(p, uint32(cur)+spanOffNext)
		}
	}
	sort.Slice(st.spans, func(i, j int) bool { return st.spans[i].base < st.spans[j].base })
	for i := 1; i < len(st.spans); i++ {
		if uint64(st.spans[i].base) < st.spans[i-1].end() {
			return fmt.Errorf("pmem: open %q: spans %#x and %#x overlap",
				p.b.name, st.spans[i-1].base, st.spans[i].base)
		}
	}
	if maxEnd > bump {
		h.repair64(p, offBump, maxEnd)
	}
	// Free stacks: push descending by span base and slot so the lowest
	// free slot of the oldest span ends on top — matching the allocator's
	// deterministic oldest-first reuse after reopen.
	for i := len(st.spans) - 1; i >= 0; i-- {
		sp := st.spans[i]
		bits := h.read64(p, sp.base+spanOffBitmap)
		mask := ^uint64(0)
		if sp.slots < 64 {
			mask = uint64(1)<<sp.slots - 1
		}
		if bits&^mask != 0 {
			return fmt.Errorf("pmem: open %q: span %#x bitmap %#x has bits beyond %d slots",
				p.b.name, sp.base, bits, sp.slots)
		}
		for slot := int(sp.slots) - 1; slot >= 0; slot-- {
			if bits&(1<<uint(slot)) == 0 {
				st.free[sp.class] = append(st.free[sp.class], uint32(i)<<8|uint32(slot))
			}
		}
	}
	p.alloc = st
	return nil
}

// repair64 writes a header word into both the cache view and the durable
// backing directly — open-time self-repair, outside the emitted program.
func (h *Heap) repair64(p *Pool, off uint32, v uint64) {
	if err := h.AS.Write64(p.region.Base+uint64(off), v); err != nil {
		panic(fmt.Sprintf("pmem: pool %q header unmapped: %v", p.b.name, err))
	}
	binary.LittleEndian.PutUint64(p.b.data[off:], v)
}
