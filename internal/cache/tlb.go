package cache

import "potgo/internal/vm"

// TLB models a translation look-aside buffer as a fully-associative,
// page-granularity cache over virtual page numbers. The paper (following
// Sniper) does not model the page-table walk in detail; a miss is charged a
// fixed penalty instead.
type TLB struct {
	c           *Cache
	missPenalty uint64
}

// NewTLB builds a TLB with the given number of entries and fixed miss
// penalty in cycles.
func NewTLB(name string, entries int, missPenalty uint64) *TLB {
	// Model as fully associative: 1 set, `entries` ways, page-grain
	// blocks. Real TLBs are highly associative; full associativity is the
	// standard simplification at this entry count.
	return &TLB{
		c: New(Config{
			Name:      name,
			Sets:      1,
			Ways:      entries,
			LineShift: vm.PageShift,
		}),
		missPenalty: missPenalty,
	}
}

// Access looks up the page containing va. It returns the cycle penalty
// incurred: 0 on a hit, the fixed walk penalty on a miss (the entry is then
// filled).
func (t *TLB) Access(va uint64) (penalty uint64) {
	if t.c.Access(va) {
		return 0
	}
	return t.missPenalty
}

// Stats returns hit/miss counters.
func (t *TLB) Stats() Stats { return t.c.Stats() }

// ResetStats zeroes the counters.
func (t *TLB) ResetStats() { t.c.ResetStats() }

// Flush empties the TLB (context switch / pool unmap).
func (t *TLB) Flush() { t.c.Flush() }
