package cache

import (
	"testing"
	"testing/quick"
)

func small() *Cache {
	return New(Config{Name: "t", Sets: 4, Ways: 2, LineShift: 6, Latency: 3})
}

func TestConfigValidate(t *testing.T) {
	bad := []Config{
		{Name: "a", Sets: 0, Ways: 1},
		{Name: "b", Sets: 3, Ways: 1},
		{Name: "c", Sets: 4, Ways: 0},
	}
	for _, cfg := range bad {
		if err := cfg.Validate(); err == nil {
			t.Errorf("config %+v must be invalid", cfg)
		}
	}
	good := Config{Name: "d", Sets: 64, Ways: 8, LineShift: 6}
	if err := good.Validate(); err != nil {
		t.Errorf("config %+v must be valid: %v", good, err)
	}
	if good.SizeBytes() != 64*8*64 {
		t.Errorf("SizeBytes = %d", good.SizeBytes())
	}
}

func TestNewPanicsOnBadConfig(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("New must panic on invalid config")
		}
	}()
	New(Config{Sets: 3, Ways: 1})
}

func TestColdMissThenHit(t *testing.T) {
	c := small()
	if c.Access(0x1000) {
		t.Error("cold access must miss")
	}
	if !c.Access(0x1000) {
		t.Error("second access must hit")
	}
	// Same line, different byte: hit.
	if !c.Access(0x1001) {
		t.Error("same-line access must hit")
	}
	s := c.Stats()
	if s.Hits != 2 || s.Misses != 1 {
		t.Errorf("stats = %+v", s)
	}
}

func TestLRUEviction(t *testing.T) {
	c := small() // 4 sets, 2 ways, 64B lines: same set every 4 lines
	// Three conflicting lines in set 0: strides of 4*64 = 256 bytes.
	a, b, d := uint64(0), uint64(256), uint64(512)
	c.Access(a) // miss, set={a}
	c.Access(b) // miss, set={b,a}
	c.Access(a) // hit,  set={a,b}
	c.Access(d) // miss, evicts LRU=b, set={d,a}
	if !c.Probe(a) {
		t.Error("a (MRU before fill) must survive")
	}
	if c.Probe(b) {
		t.Error("b (LRU) must have been evicted")
	}
	if !c.Probe(d) {
		t.Error("d must be resident after fill")
	}
}

func TestProbeDoesNotPerturb(t *testing.T) {
	c := small()
	c.Access(0)
	before := c.Stats()
	if !c.Probe(0) || c.Probe(0x100000) {
		t.Error("probe results wrong")
	}
	if c.Stats() != before {
		t.Error("Probe must not change stats")
	}
}

func TestInvalidateAndFlush(t *testing.T) {
	c := small()
	c.Access(0)
	c.Invalidate(0)
	if c.Probe(0) {
		t.Error("invalidated line still present")
	}
	c.Invalidate(0x9999000) // absent: no-op
	c.Access(64)
	c.Access(128)
	c.Flush()
	if c.Probe(64) || c.Probe(128) {
		t.Error("flush must empty the cache")
	}
	if c.Stats().Accesses() == 0 {
		t.Error("flush must preserve stats")
	}
	c.ResetStats()
	if c.Stats().Accesses() != 0 {
		t.Error("ResetStats must zero counters")
	}
}

func TestMissRate(t *testing.T) {
	var s Stats
	if s.MissRate() != 0 {
		t.Error("empty stats miss rate must be 0")
	}
	s = Stats{Hits: 3, Misses: 1}
	if got := s.MissRate(); got != 0.25 {
		t.Errorf("MissRate = %v", got)
	}
}

func TestFullyAssociativeBehavesAsLRUList(t *testing.T) {
	c := New(Config{Name: "fa", Sets: 1, Ways: 4, LineShift: 6})
	for i := uint64(0); i < 4; i++ {
		c.Access(i * 64)
	}
	c.Access(0)      // make line 0 MRU
	c.Access(4 * 64) // fill: evicts LRU = line 1
	if !c.Probe(0) {
		t.Error("line 0 must survive")
	}
	if c.Probe(64) {
		t.Error("line 1 must be evicted")
	}
	for _, l := range []uint64{2, 3, 4} {
		if !c.Probe(l * 64) {
			t.Errorf("line %d must be resident", l)
		}
	}
}

func TestTLB(t *testing.T) {
	tlb := NewTLB("DTLB", 2, 30)
	if p := tlb.Access(0x1000); p != 30 {
		t.Errorf("cold TLB access penalty = %d", p)
	}
	if p := tlb.Access(0x1fff); p != 0 {
		t.Errorf("same-page access penalty = %d", p)
	}
	tlb.Access(0x2000) // second entry
	tlb.Access(0x1000) // make page 1 MRU
	tlb.Access(0x3000) // evict page 2
	if p := tlb.Access(0x1000); p != 0 {
		t.Error("MRU page must survive")
	}
	if p := tlb.Access(0x2000); p == 0 {
		t.Error("LRU page must have been evicted")
	}
	if tlb.Stats().Misses == 0 {
		t.Error("stats must accumulate")
	}
	tlb.Flush()
	if p := tlb.Access(0x1000); p != 30 {
		t.Error("flush must empty the TLB")
	}
	tlb.ResetStats()
	if tlb.Stats().Accesses() != 0 {
		t.Error("ResetStats must zero TLB counters")
	}
}

// Property: a cache with W ways never evicts within a W-long reuse window in
// a single set (LRU stack property).
func TestQuickLRUStackProperty(t *testing.T) {
	f := func(seq []uint8) bool {
		c := New(Config{Name: "q", Sets: 1, Ways: 4, LineShift: 6})
		// Track a reference model: last 4 distinct lines accessed.
		var stack []uint64
		for _, s := range seq {
			line := uint64(s%16) * 64
			hit := c.Access(line)
			// reference
			found := -1
			for i, l := range stack {
				if l == line {
					found = i
					break
				}
			}
			refHit := found >= 0
			if refHit {
				stack = append(stack[:found], stack[found+1:]...)
			}
			stack = append([]uint64{line}, stack...)
			if len(stack) > 4 {
				stack = stack[:4]
			}
			if hit != refHit {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
