// Package cache provides the set-associative LRU tag-array model used for
// every cache-like structure in the simulated machine: L1/L2/L3 data and
// instruction caches and the TLBs. Only tags are modelled — data is
// functional and lives in internal/vm — which is exactly what a timing
// simulator needs.
package cache

import "fmt"

// Config describes a cache's geometry.
type Config struct {
	// Name labels the cache in stats output ("L1D", "DTLB", ...).
	Name string
	// Sets and Ways give the geometry. Sets must be a power of two.
	Sets, Ways int
	// LineShift is log2 of the block size: 6 for 64-byte cache lines, 12
	// for page-granularity structures such as TLBs.
	LineShift uint
	// Latency is the access latency in cycles charged on a hit.
	Latency uint64
}

// Geometry helpers for the paper's Table 4 configuration.
func (c Config) SizeBytes() int { return c.Sets * c.Ways << c.LineShift }

// Validate checks the configuration for internal consistency.
func (c Config) Validate() error {
	if c.Sets <= 0 || c.Sets&(c.Sets-1) != 0 {
		return fmt.Errorf("cache %s: sets (%d) must be a positive power of two", c.Name, c.Sets)
	}
	if c.Ways <= 0 {
		return fmt.Errorf("cache %s: ways (%d) must be positive", c.Name, c.Ways)
	}
	return nil
}

// Stats counts accesses.
type Stats struct {
	Hits, Misses uint64
}

// Accesses is the total number of look-ups.
func (s Stats) Accesses() uint64 { return s.Hits + s.Misses }

// MissRate is misses / accesses (0 if never accessed).
func (s Stats) MissRate() float64 {
	if a := s.Accesses(); a > 0 {
		return float64(s.Misses) / float64(a)
	}
	return 0
}

// Cache is a set-associative tag array with true-LRU replacement. Tags and
// valid bits live in single contiguous arrays indexed by set*ways+way (the
// ways of one set are adjacent, most-recently-used first), so a whole set is
// one cache-line-friendly scan and building a cache is three allocations
// regardless of geometry.
type Cache struct {
	cfg      Config
	setMask  uint64
	tagShift uint
	tags     []uint64
	valid    []bool
	stats    Stats
}

// New builds a cache. It panics on an invalid configuration since cache
// geometry is fixed by the experiment setup, not user input.
func New(cfg Config) *Cache {
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	return &Cache{
		cfg:      cfg,
		setMask:  uint64(cfg.Sets - 1),
		tagShift: uintLog2(uint64(cfg.Sets)),
		tags:     make([]uint64, cfg.Sets*cfg.Ways),
		valid:    make([]bool, cfg.Sets*cfg.Ways),
	}
}

// set returns the tag and valid slices of the set holding addr, plus the tag
// to match.
func (c *Cache) set(addr uint64) (tags []uint64, valid []bool, tag uint64) {
	block := addr >> c.cfg.LineShift
	base := int(block&c.setMask) * c.cfg.Ways
	return c.tags[base : base+c.cfg.Ways], c.valid[base : base+c.cfg.Ways], block >> c.tagShift
}

// Access looks up the block containing addr, updating LRU state and
// statistics; on a miss the block is filled (victim = LRU way).
func (c *Cache) Access(addr uint64) (hit bool) {
	tags, valid, tag := c.set(addr)
	for w := 0; w < c.cfg.Ways; w++ {
		if valid[w] && tags[w] == tag {
			moveToFront(tags, valid, w)
			c.stats.Hits++
			return true
		}
	}
	c.stats.Misses++
	// Fill: evict LRU (last way), insert at MRU position.
	copy(tags[1:], tags[:c.cfg.Ways-1])
	copy(valid[1:], valid[:c.cfg.Ways-1])
	tags[0], valid[0] = tag, true
	return false
}

// Probe reports whether the block containing addr is present without
// touching LRU state or statistics.
func (c *Cache) Probe(addr uint64) bool {
	tags, valid, tag := c.set(addr)
	for w := 0; w < c.cfg.Ways; w++ {
		if valid[w] && tags[w] == tag {
			return true
		}
	}
	return false
}

// Invalidate removes the block containing addr if present.
func (c *Cache) Invalidate(addr uint64) {
	tags, valid, tag := c.set(addr)
	for w := 0; w < c.cfg.Ways; w++ {
		if valid[w] && tags[w] == tag {
			valid[w] = false
			return
		}
	}
}

// Flush empties the cache, keeping statistics.
func (c *Cache) Flush() {
	for i := range c.valid {
		c.valid[i] = false
	}
}

// ResetStats zeroes the counters (e.g. after a warm-up phase).
func (c *Cache) ResetStats() { c.stats = Stats{} }

// Stats returns the accumulated counters.
func (c *Cache) Stats() Stats { return c.stats }

// Config returns the cache's configuration.
func (c *Cache) Config() Config { return c.cfg }

// Latency returns the configured hit latency in cycles.
func (c *Cache) Latency() uint64 { return c.cfg.Latency }

func moveToFront(tags []uint64, valid []bool, w int) {
	t, v := tags[w], valid[w]
	copy(tags[1:w+1], tags[:w])
	copy(valid[1:w+1], valid[:w])
	tags[0], valid[0] = t, v
}

func uintLog2(v uint64) uint {
	var n uint
	for v > 1 {
		v >>= 1
		n++
	}
	return n
}
