module potgo

go 1.22
