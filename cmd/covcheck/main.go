// Command covcheck enforces per-package statement-coverage floors on a Go
// cover profile (the -coverprofile output of `go test`). CI runs it after
// the coverage job so a regression in the persistence core's test coverage
// fails the build instead of silently rotting.
//
// Usage:
//
//	covcheck -profile coverage.out -floor potgo/internal/pmem=70 -floor potgo/internal/pds=70
//
// Floors are percentages of statements covered at least once, aggregated
// over every profiled file whose import path starts with the floor's
// package prefix. The exit status is 0 when every floor holds and 1
// otherwise; packages without a floor are reported but never fail.
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"
	"path"
	"sort"
	"strconv"
	"strings"
)

// floorFlag collects repeated -floor pkg=percent pairs.
type floorFlag struct {
	pkgs []string
	min  map[string]float64
}

func (f *floorFlag) String() string { return fmt.Sprint(f.pkgs) }

func (f *floorFlag) Set(s string) error {
	pkg, pct, ok := strings.Cut(s, "=")
	if !ok {
		return fmt.Errorf("want pkg=percent, got %q", s)
	}
	v, err := strconv.ParseFloat(pct, 64)
	if err != nil || v < 0 || v > 100 {
		return fmt.Errorf("bad percentage in %q", s)
	}
	if f.min == nil {
		f.min = make(map[string]float64)
	}
	if _, dup := f.min[pkg]; !dup {
		f.pkgs = append(f.pkgs, pkg)
	}
	f.min[pkg] = v
	return nil
}

// pkgCov accumulates statement counts for one package.
type pkgCov struct {
	total   int
	covered int
}

func (c pkgCov) percent() float64 {
	if c.total == 0 {
		return 0
	}
	return 100 * float64(c.covered) / float64(c.total)
}

func main() {
	profile := flag.String("profile", "coverage.out", "cover profile to check")
	var floors floorFlag
	flag.Var(&floors, "floor", "pkg=percent floor, repeatable (e.g. potgo/internal/pmem=70)")
	flag.Parse()

	byPkg, err := parseProfile(*profile)
	if err != nil {
		fmt.Fprintf(os.Stderr, "covcheck: %v\n", err)
		os.Exit(1)
	}

	pkgs := make([]string, 0, len(byPkg))
	for p := range byPkg {
		pkgs = append(pkgs, p)
	}
	sort.Strings(pkgs)
	for _, p := range pkgs {
		c := byPkg[p]
		fmt.Printf("%-40s %6.1f%%  (%d/%d statements)\n", p, c.percent(), c.covered, c.total)
	}

	failed := false
	for _, pkg := range floors.pkgs {
		c, sum := aggregate(byPkg, pkg)
		if sum == 0 {
			fmt.Fprintf(os.Stderr, "covcheck: FAIL %s: no profiled files under this package\n", pkg)
			failed = true
			continue
		}
		if got, want := c.percent(), floors.min[pkg]; got < want {
			fmt.Fprintf(os.Stderr, "covcheck: FAIL %s: %.1f%% < floor %.1f%%\n", pkg, got, want)
			failed = true
		} else {
			fmt.Printf("floor ok: %s %.1f%% >= %.1f%%\n", pkg, got, want)
		}
	}
	if failed {
		os.Exit(1)
	}
}

// aggregate sums coverage over every package equal to or nested under pkg.
func aggregate(byPkg map[string]pkgCov, pkg string) (pkgCov, int) {
	var c pkgCov
	n := 0
	for p, pc := range byPkg {
		if p == pkg || strings.HasPrefix(p, pkg+"/") {
			c.total += pc.total
			c.covered += pc.covered
			n++
		}
	}
	return c, n
}

// block is one profiled source region's aggregate across test binaries.
type block struct {
	stmts int
	hit   bool
}

// parseProfile reads a cover profile: a "mode:" header, then one line per
// source region, "file:start.col,end.col numStmts hitCount". When several
// test binaries share a -coverpkg set (go test pkg1 pkg2 ...), the profile
// repeats each region once per binary, so regions are deduplicated by
// file:range and a region counts as covered if ANY binary hit it.
func parseProfile(name string) (map[string]pkgCov, error) {
	f, err := os.Open(name)
	if err != nil {
		return nil, err
	}
	defer f.Close()

	blocks := make(map[string]*block)
	sc := bufio.NewScanner(f)
	lineno := 0
	for sc.Scan() {
		lineno++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "mode:") {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) != 3 {
			return nil, fmt.Errorf("%s:%d: want 'file:range stmts count', got %q", name, lineno, line)
		}
		stmts, err := strconv.Atoi(fields[1])
		if err != nil {
			return nil, fmt.Errorf("%s:%d: bad statement count %q", name, lineno, fields[1])
		}
		count, err := strconv.Atoi(fields[2])
		if err != nil {
			return nil, fmt.Errorf("%s:%d: bad hit count %q", name, lineno, fields[2])
		}
		b, ok := blocks[fields[0]]
		if !ok {
			b = &block{stmts: stmts}
			blocks[fields[0]] = b
		}
		b.hit = b.hit || count > 0
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}

	byPkg := make(map[string]pkgCov)
	for key, b := range blocks {
		file, _, ok := strings.Cut(key, ":")
		if !ok {
			return nil, fmt.Errorf("%s: block key %q has no file separator", name, key)
		}
		pkg := path.Dir(file)
		c := byPkg[pkg]
		c.total += b.stmts
		if b.hit {
			c.covered += b.stmts
		}
		byPkg[pkg] = c
	}
	return byPkg, nil
}
