// Command potcrash runs adversarial crash-injection campaigns against the
// persistent heap and its client structures (internal/crashtest). Each
// campaign sweeps crash points over a target's transactional workload,
// crashes the volatile persistence domain under a line-loss adversary,
// recovers from the surviving durable bytes and verifies invariants against
// a deterministic model.
//
// Usage:
//
//	potcrash [flags]                      run a campaign
//	potcrash -replay 'rbt@267#none' ...   reproduce one recorded case
//
// The exit status is 0 when every case passes and 1 when any fails;
// -expect-failure inverts that, for CI mutation checks that must prove the
// engine catches an injected missing-flush bug.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/exec"
	"runtime"
	"sort"
	"strings"
	"time"

	"potgo/internal/crashtest"
	"potgo/internal/harness"
	"potgo/internal/nvmsim"
	"potgo/internal/obs"
	"potgo/internal/pmem"
)

func main() {
	var (
		targetsFlag = flag.String("targets", "all", "comma-separated targets, or 'all' (list,bst,rbt,btree,bplus,alloc,tpcc)")
		seed        = flag.Uint64("seed", 1, "campaign seed: workload streams, point sampling, policy seeds")
		ops         = flag.Int("ops", 12, "workload transactions per case")
		points      = flag.Int("points", 48, "max crash points per target (<=0: exhaustive)")
		policies    = flag.String("policies", "drop-all,torn", "comma-separated adversaries (drop-all,keep-random,torn)")
		maxFailures = flag.Int("max-failures", 1, "stop a target's campaign after this many failures")
		noMinimize  = flag.Bool("no-minimize", false, "skip counterexample minimization on failures")
		mutCLWB     = flag.Int("mutate-drop-clwb", 0, "bug injection: drop every Nth cache-line write-back (1 = all)")
		mutFence    = flag.Int("mutate-drop-fence", 0, "bug injection: drop every Nth store fence (1 = all)")
		expectFail  = flag.Bool("expect-failure", false, "invert the exit status: succeed only if the campaign finds a failure")
		jsonOut     = flag.String("json", "", "write the campaign summary as JSON to this file ('-' for stdout)")
		benchPath   = flag.String("bench", "", "append a trajectory record to this file (e.g. BENCH_crash.json)")
		replayTok   = flag.String("replay", "", "reproduce one case from its replay token instead of sweeping")
		metricsOut  = flag.String("metrics-out", "", "write a JSON metrics snapshot to this file at exit")
		listen      = flag.String("listen", "", "serve live metrics on this address at /debug/vars (expvar JSON)")
		progress    = flag.Duration("progress", 0, "periodic cases/sec + ETA report interval on stderr (0 disables)")
		concurrent  = flag.Bool("concurrent", false, "run the concurrent campaign: crash a multi-worker workload on the sharded heap (-workers/-shards; -ops is per worker, -points crash points)")
		mvccFlag    = flag.Bool("mvcc", false, "run the MVCC campaign: crash a journaled snapshot-read workload with concurrent epoch reclamation (-workers/-shards; -ops is per worker, -points crash points)")
		clusterFlag = flag.Bool("cluster", false, "run the cluster campaign: kill a whole replicated potserve node mid-replication, fail over, verify acked-prefix linearizability (-nodes/-workers/-shards; -ops is per worker, -points kill points)")
		nodes       = flag.Int("nodes", 3, "cluster campaign: member count (>= 3)")
		mutSplit    = flag.Bool("mutate-split-brain", false, "bug injection: disable the stale-epoch fence and stage two primaries (cluster campaign must fail; pair with -expect-failure)")
		mutStale    = flag.Bool("mutate-stale-read", false, "bug injection: freeze snapshot pins at a stale epoch (MVCC campaign must fail; pair with -expect-failure)")
		workers     = flag.Int("workers", 4, "concurrent campaign: worker goroutines")
		shards      = flag.Int("shards", 4, "concurrent campaign: heap lock shards")
		ftOverhead  = flag.Bool("ft-overhead", false, "measure the FT checksum+parity tax on the Table 5 micros and durable TPC-C (plain vs fault-tolerant pools) and append a record to -bench")
		corruptK    = flag.Int("corrupt-k", 0, "repair campaign: single-bit media faults per round (>0 selects the corrupt-scrub-verify campaign)")
		corruptMode = flag.String("corrupt-mode", "detect", "repair campaign fault flavor: detect (payload bits) or silent (checksum/parity bits)")
		scrubCrash  = flag.Bool("scrub", false, "repair campaign: arm a power failure inside each round's scrub pass (-points rounds)")
		mutNoParity = flag.Bool("mutate-no-parity", false, "bug injection: let the parity column go stale under part of the workload (repair campaign must fail)")
	)
	flag.Parse()

	reg := obs.NewRegistry()
	if *listen != "" {
		addr, _, err := reg.Serve(*listen)
		if err != nil {
			fatal(err)
		}
		fmt.Fprintf(os.Stderr, "potcrash: metrics at http://%s/debug/vars\n", addr)
	}

	opt := crashtest.Options{
		Obs:         reg,
		Seed:        *seed,
		Ops:         *ops,
		MaxPoints:   *points,
		MaxFailures: *maxFailures,
		Minimize:    !*noMinimize,
		Mutate: crashtest.MutationSpec{
			DropCLWBEveryN:  *mutCLWB,
			DropFenceEveryN: *mutFence,
		},
	}
	var polNames []string
	for _, s := range strings.Split(*policies, ",") {
		s = strings.TrimSpace(s)
		if s == "" {
			continue
		}
		k, err := nvmsim.ParseKind(s)
		if err != nil {
			fatal(err)
		}
		opt.Policies = append(opt.Policies, k)
		polNames = append(polNames, s)
	}
	if len(opt.Policies) == 0 {
		fatal(fmt.Errorf("potcrash: no policies selected"))
	}

	if *replayTok != "" {
		os.Exit(replay(*replayTok, opt, *expectFail))
	}

	if *clusterFlag {
		copt := crashtest.DefaultClusterOptions()
		copt.Seed = *seed
		copt.Nodes = *nodes
		copt.Workers = *workers
		copt.Shards = *shards
		copt.OpsPerWorker = *ops
		copt.Points = *points
		copt.Policies = opt.Policies
		copt.MutateSplitBrain = *mutSplit
		copt.Obs = reg
		start := time.Now()
		sum, err := crashtest.RunCluster(copt)
		wall := time.Since(start).Seconds()
		if err != nil {
			fmt.Printf("cluster campaign: FAIL after %d/%d points: %v\n", sum.Fired+sum.Completed, sum.Points, err)
			os.Exit(status(true, *expectFail))
		}
		fmt.Printf("cluster campaign: %d nodes, %d workers, %d points (%d node kills fired, %d drained), %d acked writes, %d events spanned (%.1fs)\n",
			copt.Nodes, copt.Workers, sum.Points, sum.Fired, sum.Completed, sum.AckedOps, sum.Span, wall)
		if *metricsOut != "" {
			if err := reg.WriteFile(*metricsOut); err != nil {
				fatal(err)
			}
		}
		os.Exit(status(false, *expectFail))
	}

	if *mvccFlag {
		copt := crashtest.DefaultConcurrentOptions()
		copt.Seed = *seed
		copt.Workers = *workers
		copt.Shards = *shards
		copt.OpsPerWorker = *ops
		copt.Points = *points
		copt.Policies = opt.Policies
		copt.Obs = reg
		start := time.Now()
		sum, err := crashtest.RunMVCC(copt, *mutStale)
		wall := time.Since(start).Seconds()
		if err != nil {
			fmt.Printf("mvcc campaign: FAIL after %d/%d points: %v\n", sum.Fired+sum.Completed, sum.Points, err)
			os.Exit(status(true, *expectFail))
		}
		fmt.Printf("mvcc campaign: %d workers on %d shards, %d points (%d fired, %d drained), %d acked ops, %d snapshot reads, %d reclaim sweeps, %d events spanned (%.1fs)\n",
			copt.Workers, copt.Shards, sum.Points, sum.Fired, sum.Completed, sum.AckedOps, sum.SnapshotReads, sum.Reclaims, sum.Span, wall)
		if *metricsOut != "" {
			if err := reg.WriteFile(*metricsOut); err != nil {
				fatal(err)
			}
		}
		os.Exit(status(false, *expectFail))
	}

	if *concurrent {
		copt := crashtest.DefaultConcurrentOptions()
		copt.Seed = *seed
		copt.Workers = *workers
		copt.Shards = *shards
		copt.OpsPerWorker = *ops
		copt.Points = *points
		copt.Policies = opt.Policies
		copt.Obs = reg
		start := time.Now()
		sum, err := crashtest.RunConcurrent(copt)
		wall := time.Since(start).Seconds()
		if err != nil {
			fmt.Printf("concurrent campaign: FAIL after %d/%d points: %v\n", sum.Fired+sum.Completed, sum.Points, err)
			os.Exit(status(true, *expectFail))
		}
		fmt.Printf("concurrent campaign: %d workers on %d shards, %d points (%d fired, %d drained), %d acked ops, %d events spanned (%.1fs)\n",
			copt.Workers, copt.Shards, sum.Points, sum.Fired, sum.Completed, sum.AckedOps, sum.Span, wall)
		if *metricsOut != "" {
			if err := reg.WriteFile(*metricsOut); err != nil {
				fatal(err)
			}
		}
		os.Exit(status(false, *expectFail))
	}

	if *ftOverhead {
		os.Exit(runFTOverhead(*seed, *ops, *benchPath))
	}

	if *corruptK > 0 || *mutNoParity || *scrubCrash {
		os.Exit(runRepair(reg, opt, *corruptK, *corruptMode, *scrubCrash, *mutNoParity,
			*shards, *ops, *points, *expectFail, *benchPath, *metricsOut))
	}

	targets, err := selectTargets(*targetsFlag, *seed)
	if err != nil {
		fatal(err)
	}

	start := time.Now()
	prog := obs.NewReporter(os.Stderr, "potcrash", "case", *progress,
		func() (done, total float64) {
			// cases_planned grows as each target sizes its sweep, so the
			// ETA refines target by target.
			return float64(reg.Counter("crashtest.cases_explored").Value()),
				float64(reg.Counter("crashtest.cases_planned").Value())
		},
		func() string {
			return fmt.Sprintf("%d/%d targets", reg.Counter("crashtest.targets_completed").Value(), len(targets))
		})
	var (
		summaries []crashtest.Summary
		names     []string
		failures  int
	)
	for _, tg := range targets {
		sum, err := crashtest.RunTarget(tg, opt)
		if err != nil {
			fatal(err)
		}
		summaries = append(summaries, sum)
		names = append(names, sum.Target)
		failures += len(sum.Failures)
		printSummary(sum)
	}
	prog.Stop()
	wall := time.Since(start).Seconds()

	var span uint64
	var pointsTotal, cases int
	for _, s := range summaries {
		span += s.Span
		pointsTotal += s.Points
		cases += s.Cases
	}
	fmt.Printf("campaign: %d targets, %d events spanned, %d points, %d cases, %d failures (%.1fs)\n",
		len(summaries), span, pointsTotal, cases, failures, wall)

	if *jsonOut != "" {
		if err := writeJSON(*jsonOut, opt, polNames, summaries, wall); err != nil {
			fatal(err)
		}
	}
	if *benchPath != "" {
		sort.Strings(names)
		rec := harness.CrashRecord{
			Timestamp: time.Now().UTC().Format(time.RFC3339),
			GitSHA:    gitSHA(),
			GoVersion: runtime.Version(),
			NumCPU:    runtime.NumCPU(),
			Seed:      opt.Seed,
			Ops:       opt.Ops,
			MaxPoints: opt.MaxPoints,
			Policies:  polNames,
			Targets:   names,
			EventSpan: span,
			Points:    pointsTotal,
			Cases:     cases,
			Failures:  failures,
		}
		rec.WallSeconds = wall
		switch err := harness.AppendCrashRecord(*benchPath, rec); {
		case err == nil:
			fmt.Printf("appended trajectory record to %s\n", *benchPath)
		case strings.Contains(err.Error(), harness.ErrDuplicateCrashRecord.Error()):
			fmt.Fprintf(os.Stderr, "potcrash: %v (not recording)\n", err)
		default:
			fatal(err)
		}
	}

	if *metricsOut != "" {
		if err := reg.WriteFile(*metricsOut); err != nil {
			fatal(err)
		}
		fmt.Printf("wrote %s\n", *metricsOut)
	}

	os.Exit(status(failures > 0, *expectFail))
}

// runRepair drives the media-fault repair campaign: inject -corrupt-k
// single-bit faults per round, scrub, and verify byte-exact recovery
// (crashing mid-scrub when -scrub is set). It returns the process exit
// status with -expect-failure folded in.
func runRepair(reg *obs.Registry, opt crashtest.Options, k int, mode string, scrubCrash, noParity bool,
	shards, ops, points int, expectFail bool, benchPath, metricsOut string) int {
	ropt := crashtest.DefaultRepairOptions()
	ropt.Seed = opt.Seed
	ropt.Shards = shards
	ropt.Obs = reg
	ropt.Policies = opt.Policies
	if k > 0 {
		ropt.K = k
	} else if noParity {
		ropt.K = 6 // the mutation check wants enough faults to hit a stale group
	}
	if ops > 0 {
		ropt.Ops = ops
	}
	m, err := pmem.ParseCorruptMode(mode)
	if err != nil {
		fatal(err)
	}
	ropt.Mode = m
	ropt.NoParity = noParity
	if scrubCrash {
		ropt.CrashMidScrub = true
		if points > 1 {
			ropt.Rounds = points
		}
	}

	start := time.Now()
	sum, err := crashtest.RunRepair(ropt)
	wall := time.Since(start).Seconds()
	failed := err != nil
	if failed {
		fmt.Printf("repair campaign: FAIL: %v (summary %+v)\n", err, sum)
	} else {
		fmt.Printf("repair campaign: %d rounds x %d faults (%s), %d repaired + %d parity, %d crashes fired, scrub span %d events (%.1fs)\n",
			sum.Rounds, ropt.K, mode, sum.Repaired, sum.ParityRepaired, sum.Fired, sum.ScrubSpan, wall)
	}

	if benchPath != "" && !failed {
		plainNs, verifyNs, err := harness.MeasureVerifyOverhead(ropt.Keys, 50000, ropt.Seed)
		if err != nil {
			fatal(err)
		}
		fmt.Printf("get path: %.0f ns plain, %.0f ns verified (+%.1f%%)\n",
			plainNs, verifyNs, 100*(verifyNs-plainNs)/plainNs)
		rec := harness.RepairRecord{
			Timestamp:      time.Now().UTC().Format(time.RFC3339),
			GitSHA:         gitSHA(),
			GoVersion:      runtime.Version(),
			NumCPU:         runtime.NumCPU(),
			Seed:           ropt.Seed,
			K:              ropt.K,
			Mode:           mode,
			Rounds:         ropt.Rounds,
			Keys:           ropt.Keys,
			Ops:            ropt.Ops,
			CrashMidScrub:  ropt.CrashMidScrub,
			Injected:       sum.Injected,
			Repaired:       sum.Repaired,
			ParityRepaired: sum.ParityRepaired,
			Unrepairable:   sum.Unrepairable,
			Fired:          sum.Fired,
			ScrubSpan:      sum.ScrubSpan,
			WallSeconds:    wall,
			GetNsPlain:     plainNs,
			GetNsVerify:    verifyNs,
		}
		switch err := harness.AppendRepairRecord(benchPath, rec); {
		case err == nil:
			fmt.Printf("appended trajectory record to %s\n", benchPath)
		case strings.Contains(err.Error(), harness.ErrDuplicateRepairRecord.Error()):
			fmt.Fprintf(os.Stderr, "potcrash: %v (not recording)\n", err)
		default:
			fatal(err)
		}
	}
	if metricsOut != "" {
		if err := reg.WriteFile(metricsOut); err != nil {
			fatal(err)
		}
	}
	return status(failed, expectFail)
}

// runFTOverhead prices media-fault tolerance on whole benchmarks: every
// Table 5 micro (durable) and the durable TPC-C mix run over plain and
// fault-tolerant pools, and the per-op wall-time pairs land in one
// BENCH_repair.json record (mode "ft-overhead") next to the KV get-path
// verify numbers.
func runFTOverhead(seed uint64, ops int, benchPath string) int {
	// The crash campaigns default -ops to a per-case transaction count
	// far too small to time; below that threshold use measurement-sized
	// runs instead.
	microOps, tpccOps := 20000, 300
	if ops > 100 {
		microOps = ops
		tpccOps = ops / 20
	}
	start := time.Now()
	rows, err := harness.MeasureFTOverhead(nil, microOps, tpccOps, int64(seed))
	if err != nil {
		fatal(err)
	}
	wall := time.Since(start).Seconds()
	for _, r := range rows {
		fmt.Printf("%-4s %6d ops: %8.0f ns/op plain, %8.0f ns/op FT (+%.1f%%)\n",
			r.Bench, r.Ops, r.PlainNs, r.FTNs, 100*r.Overhead())
	}
	plainNs, verifyNs, err := harness.MeasureVerifyOverhead(2048, 50000, seed)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("get path: %.0f ns plain, %.0f ns verified (+%.1f%%)\n",
		plainNs, verifyNs, 100*(verifyNs-plainNs)/plainNs)

	if benchPath != "" {
		rec := harness.RepairRecord{
			Timestamp:   time.Now().UTC().Format(time.RFC3339),
			GitSHA:      gitSHA(),
			GoVersion:   runtime.Version(),
			NumCPU:      runtime.NumCPU(),
			Seed:        seed,
			Mode:        "ft-overhead",
			Ops:         microOps,
			WallSeconds: wall,
			GetNsPlain:  plainNs,
			GetNsVerify: verifyNs,
			Workloads:   rows,
		}
		switch err := harness.AppendRepairRecord(benchPath, rec); {
		case err == nil:
			fmt.Printf("appended trajectory record to %s\n", benchPath)
		case strings.Contains(err.Error(), harness.ErrDuplicateRepairRecord.Error()):
			fmt.Fprintf(os.Stderr, "potcrash: %v (not recording)\n", err)
		default:
			fatal(err)
		}
	}
	return 0
}

// replay reproduces one recorded case and reports whether it still fails.
func replay(tok string, opt crashtest.Options, expectFail bool) int {
	name, event, keep, err := crashtest.ParseReplayToken(tok)
	if err != nil {
		fatal(err)
	}
	tg, err := crashtest.TargetByName(name, opt.Seed)
	if err != nil {
		fatal(err)
	}
	if err := crashtest.Replay(tg, opt, event, keep); err != nil {
		fmt.Printf("replay %s: FAIL: %v\n", tok, err)
		return status(true, expectFail)
	}
	fmt.Printf("replay %s: pass\n", tok)
	return status(false, expectFail)
}

func selectTargets(spec string, seed uint64) ([]crashtest.Target, error) {
	if spec == "all" {
		return crashtest.Targets(seed), nil
	}
	var out []crashtest.Target
	for _, name := range strings.Split(spec, ",") {
		name = strings.TrimSpace(name)
		if name == "" {
			continue
		}
		tg, err := crashtest.TargetByName(name, seed)
		if err != nil {
			return nil, err
		}
		out = append(out, tg)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("potcrash: no targets selected")
	}
	return out, nil
}

func printSummary(sum crashtest.Summary) {
	mode := "sampled"
	if sum.Exhaustive {
		mode = "exhaustive"
	}
	fmt.Printf("%-6s span %5d events, %3d points (%s), %4d cases, %d failures\n",
		sum.Target, sum.Span, sum.Points, mode, sum.Cases, len(sum.Failures))
	for _, f := range sum.Failures {
		fmt.Printf("  FAIL %s [%s seed %d, %d lines lost]\n", f.ReplayToken(), f.Policy, f.Seed, f.Dropped)
		fmt.Printf("       %s\n", f.Err)
		if len(f.MinLost) > 0 {
			fmt.Printf("       minimal counterexample: %s\n", strings.Join(f.MinLost, " "))
		}
	}
}

// campaign is the -json output shape.
type campaign struct {
	Options   crashtest.Options   `json:"options"`
	Policies  []string            `json:"policies"`
	Summaries []crashtest.Summary `json:"summaries"`
	Wall      float64             `json:"wall_seconds"`
}

func writeJSON(path string, opt crashtest.Options, pols []string, sums []crashtest.Summary, wall float64) error {
	data, err := json.MarshalIndent(campaign{Options: opt, Policies: pols, Summaries: sums, Wall: wall}, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	if path == "-" {
		_, err := os.Stdout.Write(data)
		return err
	}
	return os.WriteFile(path, data, 0o644)
}

// status folds -expect-failure into the exit code.
func status(failed, expectFail bool) int {
	if failed != expectFail {
		if expectFail {
			fmt.Fprintln(os.Stderr, "potcrash: expected the campaign to find a failure, but it passed")
		}
		return 1
	}
	return 0
}

// gitSHA identifies the working tree for trajectory records, with a "-dirty"
// suffix when uncommitted changes are present; "" if git is unavailable.
func gitSHA() string {
	out, err := exec.Command("git", "rev-parse", "--short=12", "HEAD").Output()
	if err != nil {
		return ""
	}
	sha := strings.TrimSpace(string(out))
	if st, err := exec.Command("git", "status", "--porcelain").Output(); err == nil && len(strings.TrimSpace(string(st))) > 0 {
		sha += "-dirty"
	}
	return sha
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "potcrash: %v\n", err)
	os.Exit(1)
}
