// Command tracedump shows how the same persistent-memory program compiles
// under the three translation regimes by dumping the beginning of its
// dynamic instruction stream:
//
//	tracedump -bench LL -mode base   # oid_direct software translation
//	tracedump -bench LL -mode opt    # the paper's nvld/nvst
//	tracedump -bench LL -mode fixed  # raw pointers at fixed addresses
//
// Comparing the three side by side makes the paper's Table 2 overhead
// visible instruction by instruction.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"potgo/internal/emit"
	"potgo/internal/isa"
	"potgo/internal/pmem"
	"potgo/internal/trace"
	"potgo/internal/vm"
	"potgo/internal/workloads"
)

func main() {
	var (
		bench = flag.String("bench", "LL", "microbenchmark: LL BST SPS RBT BT B+T")
		mode  = flag.String("mode", "base", "translation regime: base, opt or fixed")
		n     = flag.Int("n", 120, "instructions to dump")
		skip  = flag.Int("skip", 0, "instructions to skip first (e.g. past setup)")
		ops   = flag.Int("ops", 3, "workload operations to run")
		seed  = flag.Int64("seed", 1, "random seed")
	)
	flag.Parse()

	var m emit.Mode
	switch strings.ToLower(*mode) {
	case "base":
		m = emit.Base
	case "opt":
		m = emit.Opt
	case "fixed":
		m = emit.Fixed
	default:
		fmt.Fprintf(os.Stderr, "tracedump: unknown mode %q\n", *mode)
		os.Exit(2)
	}
	spec, ok := workloads.ByAbbr(strings.ToUpper(*bench))
	if !ok {
		fmt.Fprintf(os.Stderr, "tracedump: unknown benchmark %q\n", *bench)
		os.Exit(2)
	}

	as := vm.NewAddressSpace(*seed)
	var buf trace.Buffer
	em := emit.New(&buf, m)
	if stack, err := as.Map(64 * 1024); err == nil {
		em.AttachStack(stack.Base, stack.Size)
	}
	var soft *emit.SoftTranslator
	var err error
	if m == emit.Base {
		if soft, err = emit.NewSoftTranslator(em, as, 1024); err != nil {
			fail(err)
		}
	}
	h, err := pmem.NewHeap(as, pmem.NewStore(), em, soft)
	if err != nil {
		fail(err)
	}
	env, err := workloads.NewEnv(h, workloads.Config{Pattern: workloads.Random, Tx: true, Seed: *seed})
	if err != nil {
		fail(err)
	}
	if _, err := spec.Run(env, *ops, spec.DefaultKeyRange); err != nil {
		fail(err)
	}

	fmt.Printf("%s / RANDOM / %s — %d instructions total; dumping [%d, %d)\n\n",
		spec.Abbr, m, len(buf.Instrs), *skip, *skip+*n)
	end := *skip + *n
	if end > len(buf.Instrs) {
		end = len(buf.Instrs)
	}
	var counts [16]int
	for _, in := range buf.Instrs {
		counts[in.Op]++
	}
	for i := *skip; i < end; i++ {
		fmt.Printf("%6d  %s\n", i, buf.Instrs[i])
	}
	fmt.Println("\ninstruction mix:")
	for op := isa.Op(0); op < 12; op++ {
		if counts[op] > 0 {
			fmt.Printf("  %-7s %8d (%.1f%%)\n", op, counts[op], 100*float64(counts[op])/float64(len(buf.Instrs)))
		}
	}
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "tracedump:", err)
	os.Exit(1)
}
