// Command obscheck validates observability artifacts: a metrics snapshot
// written by -metrics-out and/or a Chrome trace-event file written by
// -trace-out. CI runs it on the smoke job's artifacts so a malformed
// exporter fails the build rather than a later Perfetto session.
//
// Usage:
//
//	obscheck -metrics metrics.json -trace trace.json
//
// Exit status 0 when every named artifact parses and passes its sanity
// checks, 1 otherwise.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"potgo/internal/obs"
)

func main() {
	var (
		metricsPath = flag.String("metrics", "", "metrics snapshot JSON to validate")
		tracePath   = flag.String("trace", "", "Chrome trace-event JSON to validate")
	)
	flag.Parse()
	if *metricsPath == "" && *tracePath == "" {
		fmt.Fprintln(os.Stderr, "obscheck: nothing to check (pass -metrics and/or -trace)")
		os.Exit(2)
	}
	ok := true
	if *metricsPath != "" {
		if err := checkMetrics(*metricsPath); err != nil {
			fmt.Fprintf(os.Stderr, "obscheck: %s: %v\n", *metricsPath, err)
			ok = false
		}
	}
	if *tracePath != "" {
		if err := checkTrace(*tracePath); err != nil {
			fmt.Fprintf(os.Stderr, "obscheck: %s: %v\n", *tracePath, err)
			ok = false
		}
	}
	if !ok {
		os.Exit(1)
	}
}

// checkMetrics round-trips the snapshot through obs.Snapshot and requires at
// least one metric.
func checkMetrics(path string) error {
	data, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	var snap obs.Snapshot
	if err := json.Unmarshal(data, &snap); err != nil {
		return fmt.Errorf("not a metrics snapshot: %w", err)
	}
	n := len(snap.Counters) + len(snap.Gauges) + len(snap.Histograms)
	if n == 0 {
		return fmt.Errorf("snapshot holds no metrics")
	}
	fmt.Printf("obscheck: %s: %d counters, %d gauges, %d histograms\n",
		path, len(snap.Counters), len(snap.Gauges), len(snap.Histograms))
	return nil
}

// traceEvent mirrors the fields obscheck requires of every trace event.
type traceEvent struct {
	Name string `json:"name"`
	Ph   string `json:"ph"`
	PID  *int   `json:"pid"`
	TS   *int64 `json:"ts"`
}

// checkTrace requires a non-empty JSON array of trace events, each with a
// name, a phase, a pid and (for non-metadata phases) a timestamp.
func checkTrace(path string) error {
	data, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	var events []traceEvent
	if err := json.Unmarshal(data, &events); err != nil {
		return fmt.Errorf("not a trace-event array: %w", err)
	}
	if len(events) == 0 {
		return fmt.Errorf("trace holds no events")
	}
	for i, e := range events {
		if e.Name == "" || e.Ph == "" || e.PID == nil {
			return fmt.Errorf("event %d missing name/ph/pid: %+v", i, e)
		}
		if e.Ph != "M" && e.TS == nil {
			return fmt.Errorf("event %d (%s %q) missing ts", i, e.Ph, e.Name)
		}
	}
	fmt.Printf("obscheck: %s: %d events\n", path, len(events))
	return nil
}
