// Command potserve serves the persistent object store over TCP: a sharded
// persistent heap (internal/pmem), a shard-per-pool B+-tree KV store
// (internal/objstore) and the length-prefixed binary protocol of
// internal/potserve. Connections are handled concurrently and requests on
// one connection are pipelined.
//
// The store lives in the in-memory NVM simulation, so potserve is a
// workload vehicle (drive it with potbench), not a database: its contents
// vanish with the process.
//
// Usage:
//
//	potserve -listen 127.0.0.1:7070 -shards 8
//
// Cluster mode turns the process into one member of a replicated cluster:
// a static membership is given as id=addr pairs, keys hash to owners on a
// consistent ring, each member follows its peers' op logs and a write is
// acknowledged only once a majority of the membership holds it. Start one
// process per member:
//
//	potserve -node 0 -peers '0=127.0.0.1:7070,1=127.0.0.1:7071,2=127.0.0.1:7072'
//	potserve -node 1 -peers '0=127.0.0.1:7070,1=127.0.0.1:7071,2=127.0.0.1:7072'
//	potserve -node 2 -peers '0=127.0.0.1:7070,1=127.0.0.1:7071,2=127.0.0.1:7072'
//
// and point clients (potbench -addr, or cluster.DialCluster) at any member.
package main

import (
	"flag"
	"fmt"
	"net"
	"os"
	"os/signal"
	"sort"
	"strconv"
	"strings"
	"syscall"
	"time"

	"potgo/internal/cluster"
	"potgo/internal/objstore"
	"potgo/internal/obs"
	"potgo/internal/pmem"
	"potgo/internal/potserve"
)

func main() {
	var (
		listen  = flag.String("listen", "127.0.0.1:7070", "serve the object protocol on this TCP address (cluster mode: defaults to this node's -peers address)")
		shards  = flag.Int("shards", 8, "heap lock shards and KV tree shards")
		seed    = flag.Uint64("seed", 1, "heap layout seed")
		metrics = flag.String("metrics", "", "serve live metrics on this address at /debug/vars (expvar JSON)")
		peers   = flag.String("peers", "", "cluster mode: static membership as 'id=addr,id=addr,...' (must include -node)")
		nodeID  = flag.Int("node", -1, "cluster mode: this member's id within -peers")
	)
	flag.Parse()

	reg := obs.NewRegistry()
	if *metrics != "" {
		addr, _, err := reg.Serve(*metrics)
		if err != nil {
			fatal(err)
		}
		fmt.Fprintf(os.Stderr, "potserve: metrics at http://%s/debug/vars\n", addr)
	}

	var members []potserve.TopoNode
	if *peers != "" {
		var err error
		members, err = parsePeers(*peers)
		if err != nil {
			fatal(err)
		}
		self := -1
		for i, m := range members {
			if m.ID == uint32(*nodeID) && *nodeID >= 0 {
				self = i
			}
		}
		if self < 0 {
			fatal(fmt.Errorf("-peers needs -node naming one of its ids"))
		}
		// In cluster mode the member's advertised address IS its listen
		// address unless -listen overrides it explicitly.
		if flag.Lookup("listen").Value.String() == flag.Lookup("listen").DefValue {
			*listen = members[self].Addr
		}
	}

	sh, err := pmem.NewSharded(pmem.NewStore(), *shards, int64(*seed))
	if err != nil {
		fatal(err)
	}
	sh.Heap().AttachObs(reg)
	kv, err := objstore.CreateKV(sh, "potserve")
	if err != nil {
		fatal(err)
	}

	ln, err := net.Listen("tcp", *listen)
	if err != nil {
		fatal(err)
	}
	var srv *potserve.Server
	if members != nil {
		kv.EnableJournal()
		node := cluster.NewNode(uint32(*nodeID), kv, cluster.NewTopology(1, members))
		srv = potserve.ServeBackend(ln, node, reg)
		// The applied replication logs are volatile and would otherwise
		// grow without bound in a long-lived member; trim them periodically
		// to what the peers have confirmed (plus a catch-up tail).
		compactDone := make(chan struct{})
		defer close(compactDone)
		go func() {
			t := time.NewTicker(30 * time.Second)
			defer t.Stop()
			for {
				select {
				case <-t.C:
					node.SelfCompact()
				case <-compactDone:
					return
				}
			}
		}()
		fmt.Fprintf(os.Stderr, "potserve: cluster member %d/%d serving on %s (%d shards, quorum %d)\n",
			*nodeID, len(members), srv.Addr(), *shards, len(members)/2+1)
	} else {
		srv = potserve.Serve(ln, kv, reg)
		fmt.Fprintf(os.Stderr, "potserve: serving on %s (%d shards)\n", srv.Addr(), *shards)
	}

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	<-sig
	fmt.Fprintln(os.Stderr, "potserve: shutting down")
	if err := srv.Close(); err != nil {
		fatal(err)
	}
}

// parsePeers parses 'id=addr,id=addr,...' into a sorted, all-alive static
// membership.
func parsePeers(spec string) ([]potserve.TopoNode, error) {
	var out []potserve.TopoNode
	seen := make(map[uint32]bool)
	for _, part := range strings.Split(spec, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		id, addr, ok := strings.Cut(part, "=")
		if !ok {
			return nil, fmt.Errorf("-peers entry %q is not id=addr", part)
		}
		n, err := strconv.ParseUint(strings.TrimSpace(id), 10, 32)
		if err != nil {
			return nil, fmt.Errorf("-peers entry %q: bad id: %w", part, err)
		}
		if seen[uint32(n)] {
			return nil, fmt.Errorf("-peers repeats id %d", n)
		}
		seen[uint32(n)] = true
		out = append(out, potserve.TopoNode{ID: uint32(n), Alive: true, Addr: strings.TrimSpace(addr)})
	}
	if len(out) < 2 {
		return nil, fmt.Errorf("-peers needs at least 2 members, got %d", len(out))
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out, nil
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "potserve: %v\n", err)
	os.Exit(1)
}
