// Command potserve serves the persistent object store over TCP: a sharded
// persistent heap (internal/pmem), a shard-per-pool B+-tree KV store
// (internal/objstore) and the length-prefixed binary protocol of
// internal/potserve. Connections are handled concurrently and requests on
// one connection are pipelined.
//
// The store lives in the in-memory NVM simulation, so potserve is a
// workload vehicle (drive it with potbench), not a database: its contents
// vanish with the process.
//
// Usage:
//
//	potserve -listen 127.0.0.1:7070 -shards 8
package main

import (
	"flag"
	"fmt"
	"net"
	"os"
	"os/signal"
	"syscall"

	"potgo/internal/objstore"
	"potgo/internal/obs"
	"potgo/internal/pmem"
	"potgo/internal/potserve"
)

func main() {
	var (
		listen  = flag.String("listen", "127.0.0.1:7070", "serve the object protocol on this TCP address")
		shards  = flag.Int("shards", 8, "heap lock shards and KV tree shards")
		seed    = flag.Uint64("seed", 1, "heap layout seed")
		metrics = flag.String("metrics", "", "serve live metrics on this address at /debug/vars (expvar JSON)")
	)
	flag.Parse()

	reg := obs.NewRegistry()
	if *metrics != "" {
		addr, _, err := reg.Serve(*metrics)
		if err != nil {
			fatal(err)
		}
		fmt.Fprintf(os.Stderr, "potserve: metrics at http://%s/debug/vars\n", addr)
	}

	sh, err := pmem.NewSharded(pmem.NewStore(), *shards, int64(*seed))
	if err != nil {
		fatal(err)
	}
	sh.Heap().AttachObs(reg)
	kv, err := objstore.CreateKV(sh, "potserve")
	if err != nil {
		fatal(err)
	}

	ln, err := net.Listen("tcp", *listen)
	if err != nil {
		fatal(err)
	}
	srv := potserve.Serve(ln, kv, reg)
	fmt.Fprintf(os.Stderr, "potserve: serving on %s (%d shards)\n", srv.Addr(), *shards)

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	<-sig
	fmt.Fprintln(os.Stderr, "potserve: shutting down")
	if err := srv.Close(); err != nil {
		fatal(err)
	}
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "potserve: %v\n", err)
	os.Exit(1)
}
