// Command tpcc runs the TPC-C application standalone: populate one
// warehouse, execute a transaction mix, verify the consistency conditions,
// and report per-transaction statistics. With -timed it also runs the mix
// on the simulated machine in BASE and OPT modes and reports the speedup.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"potgo/internal/emit"
	"potgo/internal/harness"
	"potgo/internal/pmem"
	"potgo/internal/polb"
	"potgo/internal/tpcc"
	"potgo/internal/trace"
	"potgo/internal/vm"
	"potgo/internal/workloads"
)

func main() {
	var (
		txns       = flag.Int("txns", 1000, "transactions to run")
		place      = flag.String("place", "all", "pool placement: all (TPCC_ALL) or each (TPCC_EACH)")
		scale      = flag.String("scale", "spec", "database scale: spec (full TPC-C cardinalities) or test")
		warehouses = flag.Int("warehouses", 0, "override warehouse count (0 = config default)")
		seed       = flag.Int64("seed", 1, "random seed")
		timed      = flag.Bool("timed", false, "also run BASE and OPT timing simulations")
	)
	flag.Parse()

	placement := tpcc.PlaceAll
	pat := workloads.All
	if strings.ToLower(*place) == "each" {
		placement = tpcc.PlaceEach
		pat = workloads.Each
	}
	cfg := tpcc.SpecConfig(*seed)
	if strings.ToLower(*scale) == "test" {
		cfg = tpcc.TestConfig(*seed)
	}
	if *warehouses > 0 {
		cfg.Warehouses = *warehouses
	}

	// Functional run with consistency checking.
	as := vm.NewAddressSpace(*seed)
	em := emit.New(trace.Discard{}, emit.Opt)
	h, err := pmem.NewHeap(as, pmem.NewStore(), em, nil)
	if err != nil {
		fail(err)
	}
	fmt.Printf("populating %s database (%d items, %d districts x %d customers)...\n",
		placement, cfg.Items, cfg.Districts, cfg.CustomersPerDistrict)
	db, err := tpcc.NewDB(h, cfg, placement)
	if err != nil {
		fail(err)
	}
	if err := db.CheckConsistency(); err != nil {
		fail(fmt.Errorf("post-population consistency: %w", err))
	}
	fmt.Printf("running %d transactions...\n", *txns)
	if err := db.RunMix(*txns); err != nil {
		fail(err)
	}
	if err := db.CheckConsistency(); err != nil {
		fail(fmt.Errorf("post-run consistency: %w", err))
	}
	st := db.Stats()
	fmt.Printf("committed %d transactions (%d new-order rollbacks)\n", st.Total(), st.Rollbacks)
	for i, n := range st.Counts {
		fmt.Printf("  %-12s %6d\n", tpcc.TxType(i), n)
	}
	fmt.Println("consistency conditions hold")

	if !*timed {
		return
	}
	fmt.Println("\ntiming simulation (in-order core)...")
	spec := harness.RunSpec{Bench: harness.TPCCBench, Pattern: pat, Tx: true,
		Core: harness.InOrder, Ops: *txns, Seed: *seed, TPCC: &cfg}
	base, err := harness.Run(spec)
	if err != nil {
		fail(err)
	}
	optSpec := spec
	optSpec.Opt, optSpec.Design = true, polb.Pipelined
	opt, err := harness.Run(optSpec)
	if err != nil {
		fail(err)
	}
	fmt.Printf("BASE: %d cycles, %d instructions\n", base.CPU.Cycles, base.CPU.Instructions)
	fmt.Printf("OPT : %d cycles, %d instructions (POLB miss %.2f%%)\n",
		opt.CPU.Cycles, opt.CPU.Instructions, 100*opt.CPU.POLB.MissRate())
	fmt.Printf("speedup: %.2fx\n", float64(base.CPU.Cycles)/float64(opt.CPU.Cycles))
}

func fail(err error) {
	fmt.Fprintf(os.Stderr, "tpcc: %v\n", err)
	os.Exit(1)
}
