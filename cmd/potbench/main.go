// Command potbench load-tests a potserve server: several client
// connections issue pipelined batches of get/put/delete requests, latencies
// land in internal/obs histograms, and the run's throughput and tail
// latencies can be appended to a BENCH_serve.json trajectory.
//
// With no -addr it brings up an in-process server on a loopback port first,
// so one command measures the full stack:
//
//	potbench -conns 8 -ops 20000 -depth 16 -bench BENCH_serve.json
package main

import (
	"flag"
	"fmt"
	"math/rand"
	"net"
	"os"
	"os/exec"
	"runtime"
	"sort"
	"strings"
	"sync"
	"time"

	"potgo/internal/cluster"
	"potgo/internal/harness"
	"potgo/internal/objstore"
	"potgo/internal/obs"
	"potgo/internal/pmem"
	"potgo/internal/potserve"
)

func main() {
	var (
		addr       = flag.String("addr", "", "potserve address; empty starts an in-process server")
		conns      = flag.Int("conns", 4, "client connections (one worker goroutine each)")
		ops        = flag.Int("ops", 10000, "requests per connection")
		depth      = flag.Int("depth", 16, "pipeline depth (requests in flight per connection)")
		keySpace   = flag.Int("keyspace", 10000, "keys are drawn from [0, keyspace)")
		readPct    = flag.Int("read-pct", 50, "percentage of requests that are GETs (writes split 4:1 put:delete)")
		seed       = flag.Uint64("seed", 1, "workload seed")
		shards     = flag.Int("shards", 8, "in-process server: heap and KV shards")
		latched    = flag.Bool("latched", false, "in-process server: serve reads through the latched path instead of MVCC snapshots (baseline for read-heavy comparisons)")
		clusterN   = flag.Int("cluster", 0, "bench an in-process N-node replicated cluster (>= 2) through the routing client instead of a single server; writes pay quorum replication")
		benchPath  = flag.String("bench", "", "append a trajectory record to this file (e.g. BENCH_serve.json)")
		metricsOut = flag.String("metrics-out", "", "write a JSON metrics snapshot to this file at exit")
		p99Gate    = flag.Float64("p99-gate", 0, "fail (exit 1) when p99 latency exceeds this many µs; 0 disables. Only meaningful against records taken at the same GOMAXPROCS")
	)
	flag.Parse()
	if *conns <= 0 || *ops <= 0 || *depth <= 0 || *keySpace <= 0 || *readPct < 0 || *readPct > 100 {
		fatal(fmt.Errorf("need positive conns/ops/depth/keyspace and read-pct in [0,100]"))
	}

	reg := obs.NewRegistry()
	target := *addr
	inProcess := target == ""
	var benchHeap *pmem.Heap
	var clAddrs []string
	if *clusterN > 0 {
		if !inProcess {
			fatal(fmt.Errorf("-cluster starts its own in-process members; drop -addr"))
		}
		cl, err := cluster.NewLocal(*clusterN, *shards, int64(*seed), reg)
		if err != nil {
			fatal(err)
		}
		defer cl.Close()
		clAddrs = cl.Addrs()
		fmt.Fprintf(os.Stderr, "potbench: in-process %d-node cluster on %s (%d shards each, quorum %d)\n",
			*clusterN, strings.Join(clAddrs, " "), *shards, cl.Topology().Quorum())
	} else if inProcess {
		sh, err := pmem.NewSharded(pmem.NewStore(), *shards, int64(*seed))
		if err != nil {
			fatal(err)
		}
		sh.Heap().AttachObs(reg)
		benchHeap = sh.Heap()
		create := objstore.CreateKV
		if *latched {
			create = objstore.CreateKVLatched
		}
		kv, err := create(sh, "potbench")
		if err != nil {
			fatal(err)
		}
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			fatal(err)
		}
		srv := potserve.Serve(ln, kv, reg)
		defer srv.Close()
		target = srv.Addr()
		mode := "snapshot reads"
		if *latched {
			mode = "latched reads"
		}
		fmt.Fprintf(os.Stderr, "potbench: in-process server on %s (%d shards, %s)\n", target, *shards, mode)
	}

	// Per-worker latency slices merge into exact percentiles afterwards;
	// the obs histogram feeds -metrics-out.
	hist := reg.Histogram("potbench.latency_us", 1, 4, 16, 64, 256, 1024, 4096, 16384, 65536, 262144, 1048576)
	lats := make([][]float64, *conns)
	errCounts := make([]int, *conns)
	workerErr := make([]error, *conns)

	var wg sync.WaitGroup
	start := time.Now()
	for w := 0; w < *conns; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			// One batch executor per transport: the cluster path routes each
			// batch through the partitioning client; the single-server path
			// keeps the allocation-free PipelineAppend.
			var resps []potserve.Response
			var runBatch func([]potserve.Request) ([]potserve.Response, error)
			if len(clAddrs) > 0 {
				cc, err := cluster.DialCluster(clAddrs)
				if err != nil {
					workerErr[w] = err
					return
				}
				defer cc.Close()
				runBatch = cc.Pipeline
			} else {
				c, err := potserve.Dial(target)
				if err != nil {
					workerErr[w] = err
					return
				}
				defer c.Close()
				runBatch = func(reqs []potserve.Request) ([]potserve.Response, error) {
					var err error
					resps, err = c.PipelineAppend(reqs, resps)
					return resps, err
				}
			}
			rng := rand.New(rand.NewSource(int64(*seed) + int64(w)*0x9e3779b9))
			reqs := make([]potserve.Request, 0, *depth)
			lat := make([]float64, 0, *ops)
			for done := 0; done < *ops; {
				reqs = reqs[:0]
				for len(reqs) < *depth && done+len(reqs) < *ops {
					key := uint64(rng.Intn(*keySpace))
					switch {
					case rng.Intn(100) < *readPct:
						reqs = append(reqs, potserve.Request{Op: potserve.OpGet, Key: key})
					case rng.Intn(5) == 0:
						reqs = append(reqs, potserve.Request{Op: potserve.OpDel, Key: key})
					default:
						reqs = append(reqs, potserve.Request{Op: potserve.OpPut, Key: key, Val: rng.Uint64()})
					}
				}
				batchStart := time.Now()
				out, err := runBatch(reqs)
				if err != nil {
					workerErr[w] = err
					return
				}
				// Pipelined latency: each request in the batch waited the
				// batch's round trip.
				us := float64(time.Since(batchStart).Microseconds())
				for _, r := range out {
					lat = append(lat, us)
					hist.Observe(us)
					if r.Status == potserve.StatusErr {
						errCounts[w]++
					}
				}
				done += len(reqs)
			}
			lats[w] = lat
		}(w)
	}
	wg.Wait()
	wall := time.Since(start).Seconds()
	for w, err := range workerErr {
		if err != nil {
			fatal(fmt.Errorf("conn %d: %w", w, err))
		}
	}

	var all []float64
	errors := 0
	for w := range lats {
		all = append(all, lats[w]...)
		errors += errCounts[w]
	}
	sort.Float64s(all)
	pct := func(p float64) float64 {
		if len(all) == 0 {
			return 0
		}
		i := int(p * float64(len(all)-1))
		return all[i]
	}
	total := len(all)
	rate := float64(total) / wall

	fmt.Printf("potbench: %d conns x %d ops (depth %d, %d%% reads, keyspace %d, GOMAXPROCS %d): %.0f ops/s, p50 %.0fµs p95 %.0fµs p99 %.0fµs, %d errors (%.1fs)\n",
		*conns, *ops, *depth, *readPct, *keySpace, runtime.GOMAXPROCS(0), rate, pct(0.50), pct(0.95), pct(0.99), errors, wall)
	if *p99Gate > 0 && pct(0.99) > *p99Gate {
		fatal(fmt.Errorf("p99 %.0fµs exceeds gate %.0fµs", pct(0.99), *p99Gate))
	}

	if *benchPath != "" {
		rec := harness.ServeRecord{
			Timestamp:   time.Now().UTC().Format(time.RFC3339),
			GitSHA:      gitSHA(),
			GoVersion:   runtime.Version(),
			NumCPU:      runtime.NumCPU(),
			GoMaxProcs:  runtime.GOMAXPROCS(0),
			Seed:        *seed,
			Conns:       *conns,
			OpsPerConn:  *ops,
			Depth:       *depth,
			KeySpace:    *keySpace,
			ReadPct:     *readPct,
			Shards:      *shards,
			InProcess:   inProcess,
			Cluster:     *clusterN,
			Snapshot:    inProcess && !*latched,
			Ops:         total,
			Errors:      errors,
			WallSeconds: wall,
			OpsPerSec:   rate,
			P50us:       pct(0.50),
			P95us:       pct(0.95),
			P99us:       pct(0.99),
		}
		switch err := harness.AppendServeRecord(*benchPath, rec); {
		case err == nil:
			fmt.Printf("appended trajectory record to %s\n", *benchPath)
		case strings.Contains(err.Error(), harness.ErrDuplicateServeRecord.Error()):
			fmt.Fprintf(os.Stderr, "potbench: %v (not recording)\n", err)
		default:
			fatal(err)
		}
	}
	if *metricsOut != "" {
		if benchHeap != nil {
			benchHeap.PublishMetrics(reg)
		}
		if err := reg.WriteFile(*metricsOut); err != nil {
			fatal(err)
		}
		fmt.Printf("wrote %s\n", *metricsOut)
	}
}

// gitSHA identifies the working tree for trajectory records, with a "-dirty"
// suffix when uncommitted changes are present; "" if git is unavailable.
func gitSHA() string {
	out, err := exec.Command("git", "rev-parse", "--short=12", "HEAD").Output()
	if err != nil {
		return ""
	}
	sha := strings.TrimSpace(string(out))
	if st, err := exec.Command("git", "status", "--porcelain").Output(); err == nil && len(strings.TrimSpace(string(st))) > 0 {
		sha += "-dirty"
	}
	return sha
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "potbench: %v\n", err)
	os.Exit(1)
}
