// Command experiments regenerates every table and figure of the paper's
// evaluation (Tables 2, 8, 9; Figures 9(a), 9(b), 10, 11, 12; and the
// dynamic-instruction-reduction claim), printing each as a text table or
// ASCII chart and optionally writing a paper-vs-measured EXPERIMENTS.md.
//
// Usage:
//
//	experiments                     # run everything at paper scale
//	experiments -exp fig9a,table8   # a subset
//	experiments -quick              # reduced operation counts (CI-sized)
//	experiments -out EXPERIMENTS.md # also write the markdown report
//	experiments -parallel 1         # serial (default: all CPUs)
//	experiments -cpuprofile cpu.pb.gz -memprofile mem.pb.gz
//
// The grid is run in two phases: every simulation any requested experiment
// needs is enumerated up front (harness.SpecsFor) and executed on a bounded
// pool of -parallel workers, then the reports render from the warm cache.
// Each simulation is self-contained, so results are bit-identical at any
// -parallel value. Simulator throughput is reported at the end and appended
// to the -simspeed trajectory file (default BENCH_simspeed.json; empty
// disables) so future changes can be checked for speed regressions.
package main

import (
	"errors"
	"flag"
	"fmt"
	"os"
	"os/exec"
	"runtime"
	"strings"
	"time"

	"potgo/internal/harness"
	"potgo/internal/obs"
	"potgo/internal/prof"
	"potgo/internal/tpcc"
)

// paperHeadline maps Report.Values keys to the paper's reported numbers for
// the paper-vs-measured summary.
var paperHeadline = []struct {
	Exp, Key, Description string
	Paper                 float64
}{
	{"table2", "geomean_insns_all", "oid_direct insns/call, ALL (Table 2 GeoMean)", 17.0},
	{"table2", "geomean_insns_each", "oid_direct insns/call, EACH (Table 2 GeoMean)", 97.3},
	{"table2", "geomean_miss_each", "predictor miss rate, EACH (Table 2 GeoMean)", 0.872},
	{"fig9a", "geomean_random_pipelined", "in-order RANDOM speedup, Pipelined (geomean)", 1.96},
	{"fig9a", "geomean_random_parallel", "in-order RANDOM speedup, Parallel (geomean)", 1.92},
	{"fig9a", "TPCC_ALL_pipelined", "TPC-C ALL speedup, in-order Pipelined", 1.10},
	{"fig9a", "TPCC_EACH_pipelined", "TPC-C EACH speedup, in-order Pipelined", 1.17},
	{"fig9b", "geomean_random_pipelined", "out-of-order RANDOM speedup, Pipelined (geomean)", 1.58},
	{"fig9b", "TPCC_EACH_pipelined", "TPC-C EACH speedup, out-of-order Pipelined", 1.12},
	{"table8", "LL_EACH_parallel_miss", "LL EACH POLB miss rate, Parallel", 0.325},
	{"table8", "BT_EACH_parallel_miss", "BT EACH POLB miss rate, Parallel", 0.025},
	{"insns", "mean_reduction", "mean dynamic-instruction reduction", 0.439},
}

func main() {
	var (
		expFlag    = flag.String("exp", "all", "comma-separated experiment ids, or 'all' ("+strings.Join(harness.ExperimentIDs, ",")+")")
		quick      = flag.Bool("quick", false, "reduced operation counts (fast, CI-sized)")
		seed       = flag.Int64("seed", 1, "random seed for all workloads")
		out        = flag.String("out", "", "also write a markdown report to this file")
		parallel   = flag.Int("parallel", runtime.NumCPU(), "concurrent simulations (results are identical at any value)")
		quiet      = flag.Bool("quiet", false, "suppress per-run progress lines")
		cpuProfile = flag.String("cpuprofile", "", "write a CPU profile to this file")
		memProfile = flag.String("memprofile", "", "write an allocation profile to this file at exit")
		simSpeed   = flag.String("simspeed", "BENCH_simspeed.json", "append a simulator-throughput record to this trajectory file (empty disables)")
		metricsOut = flag.String("metrics-out", "", "write a JSON metrics snapshot to this file at exit")
		traceOut   = flag.String("trace-out", "", "write a Chrome trace-event file of the harness phases (load in Perfetto)")
		listen     = flag.String("listen", "", "serve live metrics on this address at /debug/vars (expvar JSON)")
		progress   = flag.Duration("progress", 0, "periodic throughput/ETA report interval on stderr (0 disables)")
	)
	flag.Parse()

	stopProf, err := prof.Start(*cpuProfile, *memProfile)
	if err != nil {
		fmt.Fprintf(os.Stderr, "experiments: %v\n", err)
		os.Exit(1)
	}
	exit := func(code int) {
		if err := stopProf(); err != nil {
			fmt.Fprintf(os.Stderr, "experiments: %v\n", err)
			code = 1
		}
		os.Exit(code)
	}

	reg := obs.NewRegistry()
	if *listen != "" {
		addr, _, err := reg.Serve(*listen)
		if err != nil {
			fmt.Fprintf(os.Stderr, "experiments: %v\n", err)
			exit(1)
		}
		fmt.Fprintf(os.Stderr, "experiments: metrics at http://%s/debug/vars\n", addr)
	}
	var tw *obs.TraceWriter
	if *traceOut != "" {
		var err error
		tw, err = obs.CreateTrace(*traceOut)
		if err != nil {
			fmt.Fprintf(os.Stderr, "experiments: %v\n", err)
			exit(1)
		}
	}

	opts := harness.Options{Seed: *seed, Parallel: *parallel, Obs: reg}
	if *quick {
		cfg := tpcc.TestConfig(*seed)
		opts.Ops = 400
		opts.TPCCOps = 200
		opts.TPCC = &cfg
	}
	if !*quiet {
		opts.Progress = func(line string) { fmt.Fprintln(os.Stderr, "  "+line) }
	}
	endCfg := tw.Span(1, "config build")
	suite := harness.NewSuite(opts)
	endCfg()

	ids := harness.ExperimentIDs
	if *expFlag != "all" {
		ids = strings.Split(*expFlag, ",")
		for i := range ids {
			ids[i] = strings.TrimSpace(ids[i])
		}
	}

	start := time.Now()
	fmt.Fprintf(os.Stderr, "== prefetching simulations for %d experiment(s) on %d worker(s) ==\n",
		len(ids), suite.Options().Parallel)
	rep := obs.NewReporter(os.Stderr, "experiments", "run", *progress,
		func() (done, total float64) {
			return float64(reg.Counter("harness.runs").Value()), float64(reg.Counter("harness.runs_planned").Value())
		},
		func() string {
			return fmt.Sprintf("%.1f Minsn", float64(suite.SimulatedInstructions())/1e6)
		})
	endPrefetch := tw.Span(1, "prefetch grid")
	err = suite.PrefetchExperiments(ids)
	endPrefetch()
	rep.Stop()
	if err != nil {
		fmt.Fprintf(os.Stderr, "experiments: prefetch: %v\n", err)
		exit(1)
	}
	fmt.Fprintf(os.Stderr, "== prefetch done in %.1fs (%d Minsn simulated) ==\n",
		time.Since(start).Seconds(), suite.SimulatedInstructions()/1e6)

	var reports []harness.Report
	var timings []harness.ExperimentTiming
	for _, id := range ids {
		expStart := time.Now()
		fmt.Fprintf(os.Stderr, "== rendering %s ==\n", id)
		endRender := tw.Span(1, "render "+id)
		rep, err := suite.RunExperiment(id)
		endRender()
		if err != nil {
			fmt.Fprintf(os.Stderr, "experiments: %s: %v\n", id, err)
			exit(1)
		}
		secs := time.Since(expStart).Seconds()
		fmt.Fprintf(os.Stderr, "== %s done in %.1fs ==\n", id, secs)
		fmt.Println(rep.Text)
		reports = append(reports, rep)
		timings = append(timings, harness.ExperimentTiming{ID: id, Seconds: secs})
	}

	endSummary := tw.Span(1, "summary")
	summary := renderSummary(reports, *quick)
	fmt.Println(summary)
	endSummary()

	wall := time.Since(start).Seconds()
	insns := suite.SimulatedInstructions()
	mips := float64(insns) / wall / 1e6
	fmt.Fprintf(os.Stderr, "== grid complete: %d instructions simulated in %.1fs wall (%.2f simulated MIPS, parallel=%d) ==\n",
		insns, wall, mips, suite.Options().Parallel)

	if *simSpeed != "" {
		rec := harness.SpeedRecord{
			Timestamp:             time.Now().UTC().Format(time.RFC3339),
			GitSHA:                gitSHA(),
			GoVersion:             runtime.Version(),
			NumCPU:                runtime.NumCPU(),
			Parallel:              suite.Options().Parallel,
			Quick:                 *quick,
			Experiments:           ids,
			SimulatedInstructions: insns,
			WallSeconds:           wall,
			SimulatedMIPS:         mips,
			PerExperiment:         timings,
		}
		switch err := harness.AppendSpeedRecord(*simSpeed, rec); {
		case errors.Is(err, harness.ErrDuplicateSpeedRecord):
			// Same tree, same configuration: refuse the duplicate but
			// don't fail the run — the measurement itself succeeded.
			fmt.Fprintf(os.Stderr, "experiments: %v; not appending\n", err)
		case err != nil:
			fmt.Fprintf(os.Stderr, "experiments: %v\n", err)
			exit(1)
		default:
			fmt.Fprintf(os.Stderr, "appended throughput record to %s\n", *simSpeed)
		}
	}

	if tw != nil {
		if err := tw.Close(); err != nil {
			fmt.Fprintf(os.Stderr, "experiments: trace: %v\n", err)
			exit(1)
		}
		fmt.Fprintf(os.Stderr, "wrote %s\n", *traceOut)
	}
	if *metricsOut != "" {
		if err := reg.WriteFile(*metricsOut); err != nil {
			fmt.Fprintf(os.Stderr, "experiments: metrics: %v\n", err)
			exit(1)
		}
		fmt.Fprintf(os.Stderr, "wrote %s\n", *metricsOut)
	}
	if *out != "" {
		if err := os.WriteFile(*out, []byte(renderMarkdown(reports, summary, *quick, *seed)), 0o644); err != nil {
			fmt.Fprintf(os.Stderr, "experiments: writing %s: %v\n", *out, err)
			exit(1)
		}
		fmt.Fprintf(os.Stderr, "wrote %s\n", *out)
	}
	exit(0)
}

// gitSHA identifies the working tree for the throughput trajectory:
// the short commit hash, "-dirty" when uncommitted changes exist, or ""
// when git is unavailable (then duplicate detection is skipped).
func gitSHA() string {
	out, err := exec.Command("git", "rev-parse", "--short=12", "HEAD").Output()
	if err != nil {
		return ""
	}
	sha := strings.TrimSpace(string(out))
	if status, err := exec.Command("git", "status", "--porcelain").Output(); err == nil && len(status) > 0 {
		sha += "-dirty"
	}
	return sha
}

func renderSummary(reports []harness.Report, quick bool) string {
	var b strings.Builder
	b.WriteString("Paper vs measured (headline numbers)\n")
	fmt.Fprintf(&b, "%-50s %10s %10s\n", "metric", "paper", "measured")
	b.WriteString(strings.Repeat("-", 72) + "\n")
	byID := map[string]harness.Report{}
	for _, r := range reports {
		byID[r.ID] = r
	}
	for _, h := range paperHeadline {
		rep, ok := byID[h.Exp]
		if !ok {
			continue
		}
		v, ok := rep.Values[h.Key]
		if !ok {
			continue
		}
		fmt.Fprintf(&b, "%-50s %10.3f %10.3f\n", h.Description, h.Paper, v)
	}
	if quick {
		b.WriteString("(quick mode: reduced operation counts; run without -quick for paper scale)\n")
	}
	return b.String()
}

func renderMarkdown(reports []harness.Report, summary string, quick bool, seed int64) string {
	var b strings.Builder
	b.WriteString("# EXPERIMENTS — paper vs measured\n\n")
	b.WriteString("Reproduction of the evaluation of *Hardware Supported Persistent Object\n")
	b.WriteString("Address Translation* (Wang et al., MICRO 2017). Generated by\n")
	fmt.Fprintf(&b, "`go run ./cmd/experiments -out EXPERIMENTS.md` (seed %d", seed)
	if quick {
		b.WriteString(", **quick mode — reduced scale**")
	} else {
		b.WriteString(", paper-scale operation counts")
	}
	b.WriteString(").\n\n")
	b.WriteString("Absolute numbers are not expected to match a Sniper-modelled Xeon — the\n")
	b.WriteString("substrate is a from-scratch simulator — but the *shape* (who wins, by\n")
	b.WriteString("roughly what factor, where crossovers fall) should track the paper.\n\n")
	b.WriteString("## Headline comparison\n\n```\n")
	b.WriteString(summary)
	b.WriteString("```\n")
	for _, r := range reports {
		fmt.Fprintf(&b, "\n## %s\n\n```\n%s```\n", r.Title, r.Text)
	}
	return b.String()
}
