// Command potsim runs one workload on one simulated machine configuration
// and prints the full statistics block — the single-run counterpart of
// cmd/experiments.
//
// Examples:
//
//	potsim -bench LL -pattern RANDOM                    # BASE, in-order
//	potsim -bench LL -pattern RANDOM -opt               # OPT, Pipelined POLB
//	potsim -bench B+T -pattern EACH -opt -design parallel
//	potsim -bench TPCC -pattern ALL -opt -core ooo
//	potsim -bench BST -pattern RANDOM -opt -polb 4 -ntx
//	potsim -bench LL -pattern EACH -opt -cpuprofile cpu.pb.gz
//
// Simulator throughput (simulated MIPS) is reported on stderr; the
// statistics block on stdout is deterministic for a given spec.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"potgo/internal/harness"
	"potgo/internal/obs"
	"potgo/internal/polb"
	"potgo/internal/prof"
	"potgo/internal/tpcc"
	"potgo/internal/workloads"
)

func main() {
	var (
		bench      = flag.String("bench", "LL", "benchmark: LL BST SPS RBT BT B+T TPCC")
		pattern    = flag.String("pattern", "ALL", "pool usage pattern: ALL EACH RANDOM")
		opt        = flag.Bool("opt", false, "use hardware translation (OPT); default BASE")
		design     = flag.String("design", "pipelined", "POLB design: pipelined or parallel")
		ntx        = flag.Bool("ntx", false, "disable failure-safety/durability (the *_NTX configs)")
		coreKind   = flag.String("core", "inorder", "core model: inorder or ooo")
		polbSize   = flag.Int("polb", 0, "POLB entries (0 = paper default 32; -1 = no POLB)")
		potWalk    = flag.Int64("walk", 0, "POT walk latency in cycles (0 = design default)")
		ideal      = flag.Bool("ideal", false, "zero-cost translation (upper bound)")
		polbSets   = flag.Int("polb-sets", 0, "POLB sets (0/1 = fully-associative CAM; >1 = set-associative ablation)")
		probeWalk  = flag.Bool("probe-walk", false, "probe-accurate POT walk latency (ablation)")
		ops        = flag.Int("ops", 0, "operation count (0 = paper default)")
		seed       = flag.Int64("seed", 1, "random seed")
		quick      = flag.Bool("quick-tpcc", false, "use the down-scaled TPC-C database")
		cpuProfile = flag.String("cpuprofile", "", "write a CPU profile to this file")
		memProfile = flag.String("memprofile", "", "write an allocation profile to this file at exit")
		metricsOut = flag.String("metrics-out", "", "write a JSON metrics snapshot to this file at exit")
		traceOut   = flag.String("trace-out", "", "write a Chrome trace-event file (load in Perfetto / chrome://tracing)")
		traceEvery = flag.Int("trace-every", 1, "sample one instruction in N for the pipeline trace")
		listen     = flag.String("listen", "", "serve live metrics on this address at /debug/vars (expvar JSON)")
	)
	flag.Parse()

	stopProf, err := prof.Start(*cpuProfile, *memProfile)
	if err != nil {
		fmt.Fprintf(os.Stderr, "potsim: %v\n", err)
		os.Exit(1)
	}

	spec := harness.RunSpec{
		Bench:     strings.ToUpper(*bench),
		Opt:       *opt,
		Tx:        !*ntx,
		POLBSize:  *polbSize,
		POLBSets:  *polbSets,
		POTWalk:   *potWalk,
		Ideal:     *ideal,
		ProbeWalk: *probeWalk,
		Ops:       *ops,
		Seed:      *seed,
	}
	switch strings.ToUpper(*pattern) {
	case "ALL":
		spec.Pattern = workloads.All
	case "EACH":
		spec.Pattern = workloads.Each
	case "RANDOM":
		spec.Pattern = workloads.Random
	default:
		fmt.Fprintf(os.Stderr, "potsim: unknown pattern %q\n", *pattern)
		os.Exit(2)
	}
	switch strings.ToLower(*design) {
	case "pipelined":
		spec.Design = polb.Pipelined
	case "parallel":
		spec.Design = polb.Parallel
	default:
		fmt.Fprintf(os.Stderr, "potsim: unknown design %q\n", *design)
		os.Exit(2)
	}
	switch strings.ToLower(*coreKind) {
	case "inorder", "in-order":
		spec.Core = harness.InOrder
	case "ooo", "out-of-order":
		spec.Core = harness.OutOfOrder
	default:
		fmt.Fprintf(os.Stderr, "potsim: unknown core %q\n", *coreKind)
		os.Exit(2)
	}
	if *quick && spec.Bench == harness.TPCCBench {
		cfg := tpcc.TestConfig(*seed)
		spec.TPCC = &cfg
	}

	var (
		reg *obs.Registry
		tw  *obs.TraceWriter
	)
	if *metricsOut != "" || *listen != "" {
		reg = obs.NewRegistry()
	}
	if *listen != "" {
		addr, _, err := reg.Serve(*listen)
		if err != nil {
			fmt.Fprintf(os.Stderr, "potsim: %v\n", err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "potsim: metrics at http://%s/debug/vars\n", addr)
	}
	if *traceOut != "" {
		var err error
		tw, err = obs.CreateTrace(*traceOut)
		if err != nil {
			fmt.Fprintf(os.Stderr, "potsim: %v\n", err)
			os.Exit(1)
		}
	}

	start := time.Now()
	endSim := tw.Span(1, "simulate "+spec.Label())
	res, err := harness.RunObserved(spec, harness.RunObs{Metrics: reg, Trace: tw, TraceEvery: *traceEvery})
	endSim()
	if err != nil {
		fmt.Fprintf(os.Stderr, "potsim: %v\n", err)
		os.Exit(1)
	}
	wall := time.Since(start).Seconds()
	fmt.Fprintf(os.Stderr, "potsim: simulated %d instructions in %.2fs (%.2f simulated MIPS)\n",
		res.CPU.Instructions, wall, float64(res.CPU.Instructions)/wall/1e6)

	fmt.Printf("configuration   %s\n", spec.Label())
	fmt.Printf("cycles          %d\n", res.CPU.Cycles)
	fmt.Printf("instructions    %d\n", res.CPU.Instructions)
	fmt.Printf("IPC             %.3f\n", res.CPU.IPC())
	fmt.Printf("checksum        %#x\n", res.Checksum)
	fmt.Printf("pools           %d\n", res.Pools)
	fmt.Printf("branches        %d (%.2f%% mispredicted)\n", res.CPU.BranchLookups, 100*res.CPU.MispredictRate())
	fmt.Printf("mem stalls      %d cycles\n", res.CPU.MemStallCycles)
	fmt.Printf("instruction mix %s\n", res.CPU.Mix.String())
	m := res.CPU.Mem
	fmt.Printf("L1D             %d accesses, %.2f%% miss\n", m.L1D.Accesses(), 100*m.L1D.MissRate())
	fmt.Printf("L2              %d accesses, %.2f%% miss\n", m.L2.Accesses(), 100*m.L2.MissRate())
	fmt.Printf("L3              %d accesses, %.2f%% miss\n", m.L3.Accesses(), 100*m.L3.MissRate())
	fmt.Printf("D-TLB           %d accesses, %.2f%% miss\n", m.DTLB.Accesses(), 100*m.DTLB.MissRate())
	fmt.Printf("CLWBs           %d\n", m.CLWBs)
	if spec.Opt {
		tr := res.CPU.Translation
		fmt.Printf("translations    %d (POLB hits %d, misses %d, %.2f%% miss)\n",
			tr.Translations, tr.POLBHits, tr.POLBMisses, 100*res.CPU.POLB.MissRate())
		fmt.Printf("POT walks       %d\n", tr.POTWalks)
		fmt.Printf("trans stalls    %d cycles\n", res.CPU.TransStallCycles)
	} else {
		fmt.Printf("oid_direct      %d calls, %.1f insns/call, %.1f%% predictor miss\n",
			res.Soft.Calls, res.Soft.InsnsPerCall(), 100*res.Soft.PredictorMissRate())
	}

	if tw != nil {
		if err := tw.Close(); err != nil {
			fmt.Fprintf(os.Stderr, "potsim: trace: %v\n", err)
			os.Exit(1)
		}
	}
	if *metricsOut != "" {
		if err := reg.WriteFile(*metricsOut); err != nil {
			fmt.Fprintf(os.Stderr, "potsim: metrics: %v\n", err)
			os.Exit(1)
		}
	}
	if err := stopProf(); err != nil {
		fmt.Fprintf(os.Stderr, "potsim: %v\n", err)
		os.Exit(1)
	}
}
