// Command potlint runs potgo's invariant analyzers over the tree (see
// internal/analysis and DESIGN.md "Machine-checked invariants"): the four
// persistence analyzers from PR 2 and the four concurrency/allocation
// analyzers (lockorder, latchdiscipline, allocorder, noalloc) built on the
// interprocedural summary layer:
//
//	go run ./cmd/potlint ./...
//
// It prints one line per finding (file:line:col: [analyzer] message) — or,
// with -json, one JSON object per finding — and exits non-zero if there
// are any, so CI can gate on it. Findings are silenced line-by-line with
// `//potlint:allow <analyzer> <reason>`; unused suppressions are reported.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"

	"potgo/internal/analysis"
)

// jsonFinding is the -json record shape (one NDJSON object per line).
type jsonFinding struct {
	File     string `json:"file"`
	Line     int    `json:"line"`
	Col      int    `json:"col"`
	Analyzer string `json:"analyzer"`
	Message  string `json:"message"`
}

func main() {
	list := flag.Bool("list", false, "list the analyzers and exit")
	only := flag.String("only", "", "comma-separated analyzer names to run (default: all)")
	jsonOut := flag.Bool("json", false, "emit findings as newline-delimited JSON records")
	flag.Usage = func() {
		fmt.Fprintf(flag.CommandLine.Output(), "usage: potlint [flags] [packages]\n\n"+
			"Checks potgo's persistence and concurrency invariants. Packages default to ./...\n\n")
		flag.PrintDefaults()
	}
	flag.Parse()

	analyzers := analysis.All()
	if *list {
		for _, a := range analyzers {
			fmt.Printf("%-22s %s\n", a.Name, a.Doc)
		}
		return
	}
	if *only != "" {
		want := make(map[string]bool)
		for _, n := range strings.Split(*only, ",") {
			want[strings.TrimSpace(n)] = true
		}
		var sel []*analysis.Analyzer
		for _, a := range analyzers {
			if want[a.Name] {
				sel = append(sel, a)
				delete(want, a.Name)
			}
		}
		for n := range want {
			fatalf("unknown analyzer %q (try -list)", n)
		}
		analyzers = sel
	}

	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}

	loader, err := analysis.NewLoader("")
	if err != nil {
		fatalf("%v", err)
	}
	paths, err := loader.ExpandPatterns(patterns)
	if err != nil {
		fatalf("%v", err)
	}
	requested := make(map[string]bool, len(paths))
	for _, p := range paths {
		requested[p] = true
		if _, err := loader.Load(p); err != nil {
			fatalf("%v", err)
		}
	}

	// Analyze every loaded package (dependencies included, so facts flow),
	// but report only for the requested ones.
	diags, err := analysis.Run(analyzers, loader.Packages())
	if err != nil {
		fatalf("%v", err)
	}
	diags = analysis.FilterSuppressed(diags, loader.Fset, loader.Packages())
	n := 0
	enc := json.NewEncoder(os.Stdout)
	for _, d := range diags {
		if !requested[d.Pkg] {
			continue
		}
		pos := loader.Fset.Position(d.Pos)
		if *jsonOut {
			if err := enc.Encode(jsonFinding{
				File:     pos.Filename,
				Line:     pos.Line,
				Col:      pos.Column,
				Analyzer: d.Analyzer,
				Message:  d.Message,
			}); err != nil {
				fatalf("%v", err)
			}
		} else {
			fmt.Printf("%s: [%s] %s\n", pos, d.Analyzer, d.Message)
		}
		n++
	}
	if n > 0 {
		fmt.Fprintf(os.Stderr, "potlint: %d finding(s)\n", n)
		os.Exit(1)
	}
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "potlint: "+format+"\n", args...)
	os.Exit(1)
}
