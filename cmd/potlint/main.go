// Command potlint runs potgo's persistence-invariant analyzers over the
// tree (see internal/analysis and DESIGN.md "Persistence invariants"):
//
//	go run ./cmd/potlint ./...
//
// It prints one line per finding (file:line:col: [analyzer] message) and
// exits non-zero if there are any, so CI can gate on it.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"potgo/internal/analysis"
)

func main() {
	list := flag.Bool("list", false, "list the analyzers and exit")
	only := flag.String("only", "", "comma-separated analyzer names to run (default: all)")
	flag.Usage = func() {
		fmt.Fprintf(flag.CommandLine.Output(), "usage: potlint [flags] [packages]\n\n"+
			"Checks potgo's persistence invariants. Packages default to ./...\n\n")
		flag.PrintDefaults()
	}
	flag.Parse()

	analyzers := analysis.All()
	if *list {
		for _, a := range analyzers {
			fmt.Printf("%-22s %s\n", a.Name, a.Doc)
		}
		return
	}
	if *only != "" {
		want := make(map[string]bool)
		for _, n := range strings.Split(*only, ",") {
			want[strings.TrimSpace(n)] = true
		}
		var sel []*analysis.Analyzer
		for _, a := range analyzers {
			if want[a.Name] {
				sel = append(sel, a)
				delete(want, a.Name)
			}
		}
		for n := range want {
			fatalf("unknown analyzer %q (try -list)", n)
		}
		analyzers = sel
	}

	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}

	loader, err := analysis.NewLoader("")
	if err != nil {
		fatalf("%v", err)
	}
	paths, err := loader.ExpandPatterns(patterns)
	if err != nil {
		fatalf("%v", err)
	}
	requested := make(map[string]bool, len(paths))
	for _, p := range paths {
		requested[p] = true
		if _, err := loader.Load(p); err != nil {
			fatalf("%v", err)
		}
	}

	// Analyze every loaded package (dependencies included, so facts flow),
	// but report only for the requested ones.
	diags, err := analysis.Run(analyzers, loader.Packages())
	if err != nil {
		fatalf("%v", err)
	}
	n := 0
	for _, d := range diags {
		if !requested[d.Pkg] {
			continue
		}
		pos := loader.Fset.Position(d.Pos)
		fmt.Printf("%s: [%s] %s\n", pos, d.Analyzer, d.Message)
		n++
	}
	if n > 0 {
		fmt.Fprintf(os.Stderr, "potlint: %d finding(s)\n", n)
		os.Exit(1)
	}
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "potlint: "+format+"\n", args...)
	os.Exit(1)
}
