// Quickstart: the persistent linked list of the paper's §2.2, built on the
// pmem library.
//
// The program creates a pool, builds a linked list whose nodes are
// persistent objects referenced by ObjectIDs, closes and reopens the pool
// (at a different ASLR-randomized address — the whole point of ObjectIDs),
// and finds the data again. It then runs the same list workload through the
// timing simulator twice — software translation (BASE) versus the paper's
// nvld/nvst hardware (OPT) — and prints the speedup.
package main

import (
	"fmt"
	"os"

	"potgo/internal/emit"
	"potgo/internal/harness"
	"potgo/internal/oid"
	"potgo/internal/pds"
	"potgo/internal/pmem"
	"potgo/internal/polb"
	"potgo/internal/trace"
	"potgo/internal/vm"
	"potgo/internal/workloads"
)

// simpleCtx is a minimal pds.Ctx: everything in one pool, no transactions.
type simpleCtx struct {
	h *pmem.Heap
	p *pmem.Pool
}

func (c *simpleCtx) Heap() *pmem.Heap { return c.h }
func (c *simpleCtx) Alloc(_ uint64, size uint32) (oid.OID, error) {
	return c.h.Alloc(c.p, size)
}
func (c *simpleCtx) Free(o oid.OID) error        { return c.h.Free(o) }
func (c *simpleCtx) Touch(oid.OID, uint32) error { return nil }

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "quickstart:", err)
		os.Exit(1)
	}
}

func run() error {
	// --- Part 1: functional persistent list with close/reopen ---
	as := vm.NewAddressSpace(2026)
	em := emit.New(trace.Discard{}, emit.Opt)
	heap, err := pmem.NewHeap(as, pmem.NewStore(), em, nil)
	if err != nil {
		return err
	}

	pool, err := heap.Create("quickstart", 1<<20)
	if err != nil {
		return err
	}
	fmt.Printf("created pool %q (id %d) mapped at %#x\n", pool.Name(), pool.ID(), pool.Base())

	root, err := heap.Root(pool, 64)
	if err != nil {
		return err
	}
	ctx := &simpleCtx{h: heap, p: pool}
	list := pds.NewList(pds.NewCell(heap, root))

	for _, v := range []uint64{3, 1, 4, 1, 5, 9, 2, 6} {
		if err := list.Insert(ctx, v); err != nil {
			return err
		}
	}
	keys, err := list.Keys(ctx)
	if err != nil {
		return err
	}
	fmt.Println("list after inserts:", keys)
	if err := heap.Persist(root, 8); err != nil {
		return err
	}

	// Close and reopen: the pool lands at a new address, the ObjectIDs
	// still resolve — relocatable persistent objects.
	oldBase := pool.Base()
	if err := heap.Close(pool); err != nil {
		return err
	}
	pool, err = heap.Open("quickstart")
	if err != nil {
		return err
	}
	ctx.p = pool
	fmt.Printf("reopened: pool moved %#x -> %#x (ASLR), ObjectIDs unchanged\n", oldBase, pool.Base())
	if hit, err := list.Find(ctx, 9); err != nil || hit.IsNull() {
		return fmt.Errorf("find(9) after reopen failed: %v", err)
	}
	fmt.Println("find(9) after reopen: ok")

	// --- Part 2: BASE vs OPT on the simulated machine ---
	fmt.Println("\nsimulating the LL workload (RANDOM pattern, in-order core)...")
	base, err := harness.Run(harness.RunSpec{
		Bench: "LL", Pattern: workloads.Random, Tx: true,
		Core: harness.InOrder, Ops: 300, Seed: 7,
	})
	if err != nil {
		return err
	}
	opt, err := harness.Run(harness.RunSpec{
		Bench: "LL", Pattern: workloads.Random, Tx: true,
		Core: harness.InOrder, Ops: 300, Seed: 7,
		Opt: true, Design: polb.Pipelined,
	})
	if err != nil {
		return err
	}
	fmt.Printf("BASE (software oid_direct): %9d cycles, %8d instructions\n",
		base.CPU.Cycles, base.CPU.Instructions)
	fmt.Printf("OPT  (nvld/nvst + POLB)   : %9d cycles, %8d instructions (POLB miss %.2f%%)\n",
		opt.CPU.Cycles, opt.CPU.Instructions, 100*opt.CPU.POLB.MissRate())
	fmt.Printf("speedup: %.2fx\n", float64(base.CPU.Cycles)/float64(opt.CPU.Cycles))
	return nil
}
