// sensitivity: a small end-to-end sensitivity study using the harness API —
// how the OPT/BASE speedup of one benchmark responds to POLB size, POT-walk
// latency, and the POLB microarchitecture, rendered as terminal charts.
//
// This is a scaled-down interactive version of the paper's §6.3/§6.4
// studies (Figures 11 and 12); the full versions run via cmd/experiments.
package main

import (
	"flag"
	"fmt"
	"os"

	"potgo/internal/harness"
	"potgo/internal/polb"
	"potgo/internal/stats"
	"potgo/internal/workloads"
)

func main() {
	bench := flag.String("bench", "BST", "microbenchmark: LL BST SPS RBT BT B+T")
	ops := flag.Int("ops", 800, "operations per run")
	flag.Parse()

	if err := run(*bench, *ops); err != nil {
		fmt.Fprintln(os.Stderr, "sensitivity:", err)
		os.Exit(1)
	}
}

func run(bench string, ops int) error {
	seed := int64(21)
	base := harness.RunSpec{Bench: bench, Pattern: workloads.Random, Tx: true,
		Core: harness.InOrder, Ops: ops, Seed: seed}
	baseline, err := harness.Run(base)
	if err != nil {
		return err
	}
	fmt.Printf("%s / RANDOM / in-order — BASE: %d cycles\n\n", bench, baseline.CPU.Cycles)

	speedupOf := func(spec harness.RunSpec) (float64, error) {
		r, err := harness.Run(spec)
		if err != nil {
			return 0, err
		}
		if r.Checksum != baseline.Checksum {
			return 0, fmt.Errorf("functional divergence in %s", spec.Label())
		}
		return float64(baseline.CPU.Cycles) / float64(r.CPU.Cycles), nil
	}

	// 1. POLB size (Figure 11).
	fmt.Println("speedup vs POLB size (Pipelined):")
	for _, size := range []int{-1, 1, 4, 8, 32, 128} {
		spec := base
		spec.Opt, spec.Design, spec.POLBSize = true, polb.Pipelined, size
		sp, err := speedupOf(spec)
		if err != nil {
			return err
		}
		label := fmt.Sprintf("%4d", size)
		if size == -1 {
			label = "none"
		}
		fmt.Printf("  %s  %s\n", label, stats.Bar(sp, 3, 30))
	}

	// 2. POT walk latency (Figure 12).
	fmt.Println("\nspeedup vs POT-walk latency (Pipelined, 32-entry POLB):")
	for _, walk := range []int64{-1, 10, 30, 100, 300} {
		spec := base
		spec.Opt, spec.Design, spec.POTWalk = true, polb.Pipelined, walk
		sp, err := speedupOf(spec)
		if err != nil {
			return err
		}
		label := fmt.Sprintf("%4d", walk)
		if walk == -1 {
			label = "free"
		}
		fmt.Printf("  %s  %s\n", label, stats.Bar(sp, 3, 30))
	}

	// 3. Designs and walk models.
	fmt.Println("\ndesign comparison:")
	rows := []struct {
		name string
		mut  func(*harness.RunSpec)
	}{
		{"Pipelined (paper)", func(s *harness.RunSpec) { s.Design = polb.Pipelined }},
		{"Parallel", func(s *harness.RunSpec) { s.Design = polb.Parallel }},
		{"Pipelined, probe-accurate walk", func(s *harness.RunSpec) { s.Design = polb.Pipelined; s.ProbeWalk = true }},
		{"Pipelined, direct-mapped POLB", func(s *harness.RunSpec) { s.Design = polb.Pipelined; s.POLBSets = 32 }},
		{"ideal (zero-cost translation)", func(s *harness.RunSpec) { s.Design = polb.Pipelined; s.Ideal = true }},
	}
	for _, row := range rows {
		spec := base
		spec.Opt = true
		row.mut(&spec)
		sp, err := speedupOf(spec)
		if err != nil {
			return err
		}
		fmt.Printf("  %-32s %s\n", row.name, stats.Bar(sp, 3, 30))
	}
	return nil
}
