// kvstore: a durable key-value store built on the persistent B+ tree with
// undo-log transactions — the kind of application the paper's interface
// targets.
//
// Every Put/Delete runs inside a failure-safe transaction; the store
// survives close/reopen, and the demo at the end aborts a batch mid-flight
// to show the undo log restoring the previous state.
package main

import (
	"fmt"
	"os"

	"potgo/internal/emit"
	"potgo/internal/isa"
	"potgo/internal/oid"
	"potgo/internal/pds"
	"potgo/internal/pmem"
	"potgo/internal/trace"
	"potgo/internal/vm"
)

// KVStore is a persistent map[uint64]uint64 with transactional updates.
type KVStore struct {
	heap *pmem.Heap
	pool *pmem.Pool
	tree *pds.BPlus
	// touched dedupes undo-log snapshots within one transaction.
	touched map[oid.OID]bool
}

// Open creates or reopens the named store.
func Open(heap *pmem.Heap, name string) (*KVStore, error) {
	var pool *pmem.Pool
	var err error
	if heap.Store.Exists(name) {
		pool, err = heap.Open(name)
	} else {
		pool, err = heap.Create(name, 8<<20)
	}
	if err != nil {
		return nil, err
	}
	root, err := heap.Root(pool, 64)
	if err != nil {
		return nil, err
	}
	return &KVStore{
		heap: heap,
		pool: pool,
		tree: pds.NewBPlus(pds.NewCell(heap, root)),
	}, nil
}

// pds.Ctx implementation: single pool, transactional when a tx is open.
func (s *KVStore) Heap() *pmem.Heap { return s.heap }

func (s *KVStore) Alloc(_ uint64, size uint32) (oid.OID, error) {
	if s.heap.InTx() {
		return s.heap.TxAlloc(s.pool, size)
	}
	return s.heap.Alloc(s.pool, size)
}

func (s *KVStore) Free(o oid.OID) error {
	if s.heap.InTx() {
		return s.heap.TxFree(o)
	}
	return s.heap.Free(o)
}

func (s *KVStore) Touch(o oid.OID, size uint32) error {
	if !s.heap.InTx() || s.touched[o] {
		return nil
	}
	s.touched[o] = true
	return s.heap.TxAddRange(o, size)
}

// Put inserts or updates a key durably.
func (s *KVStore) Put(k, v uint64) error {
	return s.inTx(func() error {
		if ok, err := s.tree.Update(s, k, v); err != nil || ok {
			return err
		}
		return s.tree.Insert(s, k, v)
	})
}

// Get reads a key.
func (s *KVStore) Get(k uint64) (uint64, bool, error) {
	return s.tree.Find(s, k)
}

// Delete removes a key durably, reporting whether it existed.
func (s *KVStore) Delete(k uint64) (removed bool, err error) {
	err = s.inTx(func() error {
		removed, err = s.tree.Remove(s, k)
		return err
	})
	return removed, err
}

// PutBatch writes several pairs in ONE transaction: all or nothing.
func (s *KVStore) PutBatch(pairs map[uint64]uint64, failAfter int) error {
	s.touched = map[oid.OID]bool{}
	if err := s.heap.TxBegin(s.pool); err != nil {
		return err
	}
	n := 0
	for k, v := range pairs {
		if failAfter >= 0 && n == failAfter {
			// Simulated application error: roll everything back.
			if err := s.heap.TxAbort(); err != nil {
				return err
			}
			return fmt.Errorf("batch aborted after %d writes (as requested)", n)
		}
		if ok, err := s.tree.Update(s, k, v); err != nil {
			return err
		} else if !ok {
			if err := s.tree.Insert(s, k, v); err != nil {
				return err
			}
		}
		n++
	}
	return s.heap.TxEnd()
}

// Len counts keys.
func (s *KVStore) Len() (int, error) { return s.tree.CheckInvariants(s) }

// Close persists and unmaps the store.
func (s *KVStore) Close() error { return s.heap.Close(s.pool) }

func (s *KVStore) inTx(fn func() error) error {
	s.touched = map[oid.OID]bool{}
	if err := s.heap.TxBegin(s.pool); err != nil {
		return err
	}
	if err := fn(); err != nil {
		_ = s.heap.TxAbort()
		return err
	}
	return s.heap.TxEnd()
}

var _ pds.Ctx = (*KVStore)(nil)
var _ = isa.RZ

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "kvstore:", err)
		os.Exit(1)
	}
}

func run() error {
	as := vm.NewAddressSpace(99)
	heap, err := pmem.NewHeap(as, pmem.NewStore(), emit.New(trace.Discard{}, emit.Opt), nil)
	if err != nil {
		return err
	}

	kv, err := Open(heap, "demo")
	if err != nil {
		return err
	}
	for k := uint64(1); k <= 100; k++ {
		if err := kv.Put(k, k*k); err != nil {
			return err
		}
	}
	v, ok, err := kv.Get(12)
	if err != nil || !ok {
		return fmt.Errorf("get(12): %v", err)
	}
	fmt.Printf("put 100 keys; get(12) = %d\n", v)

	if removed, err := kv.Delete(12); err != nil || !removed {
		return fmt.Errorf("delete(12): %v", err)
	}
	if _, ok, _ := kv.Get(12); ok {
		return fmt.Errorf("key 12 survived delete")
	}
	fmt.Println("delete(12): ok")

	// Durable across close/reopen.
	if err := kv.Close(); err != nil {
		return err
	}
	kv, err = Open(heap, "demo")
	if err != nil {
		return err
	}
	n, err := kv.Len()
	if err != nil {
		return err
	}
	fmt.Printf("reopened store holds %d keys\n", n)

	// All-or-nothing batch: the abort restores the previous contents.
	before, _ := kv.Len()
	err = kv.PutBatch(map[uint64]uint64{500: 1, 501: 2, 502: 3}, 2)
	fmt.Printf("batch with injected failure: %v\n", err)
	after, err := kv.Len()
	if err != nil {
		return err
	}
	if before != after {
		return fmt.Errorf("abort leaked state: %d -> %d keys", before, after)
	}
	fmt.Printf("store unchanged after aborted batch (%d keys): atomicity holds\n", after)

	// And a successful batch commits everything.
	if err := kv.PutBatch(map[uint64]uint64{500: 1, 501: 2, 502: 3}, -1); err != nil {
		return err
	}
	final, _ := kv.Len()
	fmt.Printf("committed batch: %d keys\n", final)
	return nil
}
