// crashrecovery: demonstrates the write-ahead undo log surviving a crash.
//
// A "bank" keeps two account balances in a pool and transfers money between
// them transactionally. The process crashes in the middle of a transfer —
// after the debit has hit persistent memory but before the credit — and a
// fresh process attaches to the same NVM, detects the interrupted
// transaction, and rolls it back, restoring the invariant that the total
// balance never changes.
package main

import (
	"fmt"
	"os"

	"potgo/internal/emit"
	"potgo/internal/isa"
	"potgo/internal/nvmsim"
	"potgo/internal/oid"
	"potgo/internal/pmem"
	"potgo/internal/trace"
	"potgo/internal/vm"
)

const (
	accountA = 0 // offsets within the root object
	accountB = 8
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "crashrecovery:", err)
		os.Exit(1)
	}
}

func run() error {
	// The "NVM DIMMs": the pool store survives process crashes.
	as := vm.NewAddressSpace(7)
	store := pmem.NewStore()

	// --- process 1: set up and crash mid-transfer ---
	heap, err := pmem.NewHeap(as, store, emit.New(trace.Discard{}, emit.Opt), nil)
	if err != nil {
		return err
	}
	pool, err := heap.Create("bank", 1<<20)
	if err != nil {
		return err
	}
	root, err := heap.Root(pool, 64)
	if err != nil {
		return err
	}
	if err := setBalance(heap, root, accountA, 900); err != nil {
		return err
	}
	if err := setBalance(heap, root, accountB, 100); err != nil {
		return err
	}
	if err := heap.Persist(root, 16); err != nil {
		return err
	}
	a, b, err := balances(heap, root)
	if err != nil {
		return err
	}
	fmt.Printf("initial balances: A=%d B=%d (total %d)\n", a, b, a+b)

	// Transfer 250 from A to B — but crash between debit and credit.
	if err := heap.TxBegin(pool); err != nil {
		return err
	}
	if err := heap.TxAddRange(root, 16); err != nil {
		return err
	}
	if err := setBalance(heap, root, accountA, a-250); err != nil {
		return err
	}
	fmt.Println("debited A by 250 ... crashing before crediting B")
	if _, err := heap.Crash(nvmsim.DropAllPolicy()); err != nil {
		return err
	}

	// --- process 2: attach to the same NVM and recover ---
	heap2, err := pmem.NewHeap(as, store, emit.New(trace.Discard{}, emit.Opt), nil)
	if err != nil {
		return err
	}
	pool2, err := heap2.Open("bank")
	if err != nil {
		return err
	}
	if !heap2.NeedsRecovery(pool2) {
		return fmt.Errorf("interrupted transaction not detected")
	}
	fmt.Println("reopened pool: interrupted transaction detected, recovering...")
	if err := heap2.Recover(pool2); err != nil {
		return err
	}
	root2, err := heap2.Root(pool2, 64)
	if err != nil {
		return err
	}
	a2, b2, err := balances(heap2, root2)
	if err != nil {
		return err
	}
	fmt.Printf("recovered balances: A=%d B=%d (total %d)\n", a2, b2, a2+b2)
	if a2+b2 != a+b || a2 != a || b2 != b {
		return fmt.Errorf("recovery failed to restore the snapshot")
	}
	fmt.Println("invariant holds: the half-done transfer was rolled back")

	// And a completed transfer commits cleanly.
	if err := heap2.TxBegin(pool2); err != nil {
		return err
	}
	if err := heap2.TxAddRange(root2, 16); err != nil {
		return err
	}
	if err := setBalance(heap2, root2, accountA, a2-250); err != nil {
		return err
	}
	if err := setBalance(heap2, root2, accountB, b2+250); err != nil {
		return err
	}
	if err := heap2.TxEnd(); err != nil {
		return err
	}
	a3, b3, err := balances(heap2, root2)
	if err != nil {
		return err
	}
	fmt.Printf("after committed transfer: A=%d B=%d (total %d)\n", a3, b3, a3+b3)
	return nil
}

func setBalance(h *pmem.Heap, root oid.OID, off uint32, v uint64) error {
	ref, err := h.Deref(root, isa.RZ)
	if err != nil {
		return err
	}
	return ref.Store64(off, v, isa.RZ)
}

func balances(h *pmem.Heap, root oid.OID) (uint64, uint64, error) {
	ref, err := h.Deref(root, isa.RZ)
	if err != nil {
		return 0, 0, err
	}
	a, err := ref.Load64(accountA)
	if err != nil {
		return 0, 0, err
	}
	b, err := ref.Load64(accountB)
	if err != nil {
		return 0, 0, err
	}
	return a.V, b.V, nil
}
