// Top-level benchmarks: one per table and figure of the paper's evaluation,
// plus component microbenchmarks for the simulator's hot structures.
//
// Each BenchmarkTableN / BenchmarkFigN regenerates its experiment at a
// reduced operation count (so `go test -bench=.` completes in minutes) and
// reports the headline number as a custom metric. Paper-scale numbers come
// from `go run ./cmd/experiments` (see EXPERIMENTS.md).
package potgo

import (
	"testing"
	"time"

	"potgo/internal/cache"
	"potgo/internal/core"
	"potgo/internal/cpu"
	"potgo/internal/harness"
	"potgo/internal/isa"
	"potgo/internal/mem"
	"potgo/internal/oid"
	"potgo/internal/polb"
	"potgo/internal/pot"
	"potgo/internal/tpcc"
	"potgo/internal/trace"
	"potgo/internal/vm"
	"potgo/internal/workloads"
)

func benchSuite() *harness.Suite {
	cfg := tpcc.TestConfig(1)
	return harness.NewSuite(harness.Options{
		Seed:    1,
		Ops:     300,
		TPCCOps: 100,
		TPCC:    &cfg,
	})
}

// BenchmarkTable2 regenerates Table 2 (oid_direct instruction costs).
func BenchmarkTable2(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		s := benchSuite()
		rep, err := s.Table2()
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(rep.Values["geomean_insns_all"], "insns/call_ALL")
		b.ReportMetric(rep.Values["geomean_insns_each"], "insns/call_EACH")
	}
}

// BenchmarkFig9a regenerates Figure 9(a) (in-order speedups, both designs).
func BenchmarkFig9a(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		s := benchSuite()
		rep, err := s.Fig9a()
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(rep.Values["geomean_random_pipelined"], "speedup_RANDOM_pipe")
		b.ReportMetric(rep.Values["geomean_random_parallel"], "speedup_RANDOM_par")
	}
}

// BenchmarkFig9b regenerates Figure 9(b) (out-of-order speedups).
func BenchmarkFig9b(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		s := benchSuite()
		rep, err := s.Fig9b()
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(rep.Values["geomean_random_pipelined"], "speedup_RANDOM_ooo")
	}
}

// BenchmarkTable8 regenerates Table 8 (POLB miss rates).
func BenchmarkTable8(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		s := benchSuite()
		rep, err := s.Table8()
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(100*rep.Values["LL_EACH_parallel_miss"], "LL_EACH_par_miss_pct")
	}
}

// BenchmarkFig10 regenerates Figure 10 (no-failure-safety speedups).
func BenchmarkFig10(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		s := benchSuite()
		rep, err := s.Fig10()
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(rep.Values["geomean_random_pipelined_ntx"], "speedup_RANDOM_ntx")
	}
}

// BenchmarkFig11 regenerates Figure 11 (POLB size sensitivity).
func BenchmarkFig11(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		s := benchSuite()
		rep, err := s.Fig11()
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(rep.Values["BST_Pipelined_size32"], "BST_speedup_polb32")
		b.ReportMetric(rep.Values["BST_Pipelined_size-1"], "BST_speedup_noPOLB")
	}
}

// BenchmarkTable9 regenerates Table 9 (POLB size vs miss rate, NTX).
func BenchmarkTable9(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		s := benchSuite()
		rep, err := s.Table9()
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(100*rep.Values["LL_Pipelined_1_miss"], "LL_pipe_size1_miss_pct")
	}
}

// BenchmarkFig12 regenerates Figure 12 (POT-walk penalty sensitivity).
func BenchmarkFig12(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		s := benchSuite()
		rep, err := s.Fig12()
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(rep.Values["LL_walk30"], "LL_speedup_walk30")
		b.ReportMetric(rep.Values["LL_walk500"], "LL_speedup_walk500")
	}
}

// BenchmarkInsnReduction regenerates the dynamic-instruction-count claim.
func BenchmarkInsnReduction(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		s := benchSuite()
		rep, err := s.InsnReduction()
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(100*rep.Values["mean_reduction"], "mean_reduction_pct")
	}
}

// BenchmarkTPCC regenerates the TPC-C rows of Figure 9 on the reduced
// database.
func BenchmarkTPCC(b *testing.B) {
	cfg := tpcc.TestConfig(1)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		base, err := harness.Run(harness.RunSpec{
			Bench: harness.TPCCBench, Pattern: workloads.Each, Tx: true,
			Core: harness.InOrder, Ops: 100, Seed: 1, TPCC: &cfg,
		})
		if err != nil {
			b.Fatal(err)
		}
		opt, err := harness.Run(harness.RunSpec{
			Bench: harness.TPCCBench, Pattern: workloads.Each, Tx: true,
			Core: harness.InOrder, Ops: 100, Seed: 1, TPCC: &cfg,
			Opt: true, Design: polb.Pipelined,
		})
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(base.CPU.Cycles)/float64(opt.CPU.Cycles), "speedup_TPCC_EACH")
	}
}

// --- component microbenchmarks ---

// BenchmarkPOLBLookup measures the POLB CAM model.
func BenchmarkPOLBLookup(b *testing.B) {
	p := polb.New(polb.Pipelined, 32)
	for i := 0; i < 32; i++ {
		p.Fill(oid.New(oid.PoolID(i+1), 0), uint64(i)<<12)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p.Lookup(oid.New(oid.PoolID(i%32+1), uint32(i)))
	}
}

// BenchmarkPOTWalk measures the hardware POT walk model.
func BenchmarkPOTWalk(b *testing.B) {
	as := vm.NewAddressSpace(1)
	table, err := pot.New(as, pot.DefaultEntries)
	if err != nil {
		b.Fatal(err)
	}
	for i := 1; i <= 1024; i++ {
		if err := table.Insert(oid.PoolID(i), uint64(i)<<20); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := table.Walk(oid.PoolID(i%1024 + 1)); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTranslator measures the full translation engine (POLB hit path).
func BenchmarkTranslator(b *testing.B) {
	as := vm.NewAddressSpace(1)
	table, _ := pot.New(as, 1024)
	r, _ := as.Map(1 << 20)
	_ = table.Insert(7, r.Base)
	tr := core.New(core.DefaultConfig(polb.Pipelined), table, as)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := tr.Translate(oid.New(7, uint32(i)&0xfffff)); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkCacheAccess measures the set-associative cache model.
func BenchmarkCacheAccess(b *testing.B) {
	c := cache.New(cache.Config{Name: "L1D", Sets: 64, Ways: 8, LineShift: 6, Latency: 3})
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Access(uint64(i) * 64 % (1 << 20))
	}
}

// BenchmarkHierarchy measures a full warm data access (TLB + page table +
// cache walk).
func BenchmarkHierarchy(b *testing.B) {
	as := vm.NewAddressSpace(1)
	r, _ := as.Map(1 << 20)
	h := mem.New(mem.DefaultConfig(), as)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := h.DataAccess(r.Base + uint64(i)%4096); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkInOrderModel measures in-order simulation throughput
// (instructions simulated per second on an ALU-heavy trace).
func BenchmarkInOrderModel(b *testing.B) {
	benchCPUModel(b, true)
}

// BenchmarkOoOModel measures out-of-order simulation throughput.
func BenchmarkOoOModel(b *testing.B) {
	benchCPUModel(b, false)
}

func benchCPUModel(b *testing.B, inorder bool) {
	as := vm.NewAddressSpace(1)
	r, _ := as.Map(1 << 20)
	instrs := make([]isa.Instr, 4096)
	for i := range instrs {
		switch i % 8 {
		case 0:
			instrs[i] = isa.Instr{Op: isa.Load, Dst: 1, Addr: r.Base + uint64(i%512)*64, Size: 8}
		case 4:
			instrs[i] = isa.Instr{Op: isa.Branch, PC: uint64(i % 64 * 4), Taken: i%3 == 0}
		default:
			instrs[i] = isa.Instr{Op: isa.ALU, Dst: isa.Reg(1 + i%16), Src1: isa.Reg(1 + (i+1)%16)}
		}
	}
	machine := &cpu.Machine{Hier: mem.New(mem.DefaultConfig(), as)}
	b.SetBytes(int64(len(instrs)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		src := &trace.BufferSource{Instrs: instrs}
		var err error
		if inorder {
			_, err = cpu.RunInOrder(cpu.DefaultConfig(), machine, src)
		} else {
			_, err = cpu.RunOutOfOrder(cpu.DefaultConfig(), machine, src)
		}
		if err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSimSpeed is the observability-overhead guard: one complete timed
// OPT simulation per core model with every internal/obs hook left at its
// disabled (nil) default, reporting simulated MIPS. Successive entries in
// BENCH_simspeed.json pin this number; instrumentation changes must not
// regress it measurably (< 2%).
func BenchmarkSimSpeed(b *testing.B) {
	for _, core := range []harness.CoreKind{harness.InOrder, harness.OutOfOrder} {
		b.Run(core.String(), func(b *testing.B) {
			spec := harness.RunSpec{
				Bench: "LL", Pattern: workloads.Random, Tx: true,
				Opt: true, Design: polb.Pipelined, Core: core,
				Ops: 2000, Seed: 1,
			}
			var insns uint64
			b.ReportAllocs()
			b.ResetTimer()
			start := time.Now()
			for i := 0; i < b.N; i++ {
				res, err := harness.Run(spec)
				if err != nil {
					b.Fatal(err)
				}
				insns += res.CPU.Instructions
			}
			wall := time.Since(start).Seconds()
			b.ReportMetric(float64(insns)/wall/1e6, "simMIPS")
		})
	}
}

// BenchmarkEndToEnd measures one complete timed simulation (trace generation
// running in lockstep with the in-order timing model) and reports simulator
// throughput as simMIPS plus steady-state allocation cost; insns/op makes the
// allocs/op figure comparable across changes to the workload generator.
func BenchmarkEndToEnd(b *testing.B) {
	spec := harness.RunSpec{
		Bench: "BST", Pattern: workloads.Random, Tx: true,
		Core: harness.InOrder, Ops: 300, Seed: 2,
	}
	var insns uint64
	b.ReportAllocs()
	b.ResetTimer()
	start := time.Now()
	for i := 0; i < b.N; i++ {
		res, err := harness.Run(spec)
		if err != nil {
			b.Fatal(err)
		}
		insns += res.CPU.Instructions
	}
	wall := time.Since(start).Seconds()
	b.ReportMetric(float64(insns)/float64(b.N), "insns/op")
	b.ReportMetric(float64(insns)/wall/1e6, "simMIPS")
}

// BenchmarkWorkloadEmission measures trace-generation (functional execution
// + instruction emission) throughput.
func BenchmarkWorkloadEmission(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		spec := harness.RunSpec{Bench: "BST", Pattern: workloads.Random, Tx: true, Ops: 200, Seed: 2}
		if _, err := harness.RunFunctional(spec); err != nil {
			b.Fatal(err)
		}
	}
}
